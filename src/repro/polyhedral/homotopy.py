"""Per-cell polyhedral homotopies and the toric start-system driver.

For a mixed cell with inner normal ``gamma``, substituting
``x = t^gamma z`` into the generic system ``G`` (random coefficients on
the lifted supports) and clearing the minimal power of ``t`` from each
equation leaves the *cell homotopy*

    H_i(z, t) = sum_a c_{i,a} t^{eta_{i,a}} z^a

where the lifted slack ``eta_{i,a} >= 0`` vanishes exactly on the
cell's two edge points.  At ``t = 0`` only the edge monomials survive —
the binomial system :mod:`repro.polyhedral.binomial` solves in closed
form — and at ``t = 1`` the homotopy *is* ``G``, so tracking each
cell's ``|det|`` toric roots across ``t in [0, 1]`` reaches exactly
``mixed_volume`` solutions of ``G``.  The slacks are normalized per
cell so the smallest positive exponent is 1, which keeps ``dH/dt``
regular at ``t = 0`` (no fractional-power singularity).

:class:`CellHomotopy` implements both tracker protocols — the scalar
:class:`~repro.tracker.HomotopyFunction` and the structure-of-arrays
:class:`~repro.tracker.BatchHomotopy` — so a cell's whole start batch
advances through the existing :class:`~repro.tracker.BatchTracker`
front, and stragglers re-run through the scalar
:class:`~repro.tracker.PathTracker` with conservative options.

:class:`PolyhedralStart` packages the pipeline end to end: subdivision,
generic system, per-cell tracking, and the start points that
``repro.homotopy.solve(start="polyhedral")`` hands to the coefficient
homotopy ``gamma (1-t) G + t F``.
"""

from __future__ import annotations

import dataclasses

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..kernels import KernelUsage, Term
from ..polynomials import PolynomialSystem
from ..tracker import (
    BatchHomotopy,
    BatchTracker,
    HomotopyFunction,
    PathResult,
    PathTracker,
    TrackerOptions,
    retrack_duplicate_clusters,
)
from ..tracker.interface import _per_path_t
from .binomial import solve_binomial_system
from .cells import MixedCell, MixedSubdivision, mixed_cells
from .supports import random_coefficient_system

__all__ = ["CellHomotopy", "PolyhedralStart"]


class CellHomotopy(HomotopyFunction, BatchHomotopy):
    """``H_i(z,t) = sum_a c_{i,a} t^{eta_{i,a}} z^a`` for one mixed cell.

    Exponents come pre-normalized (0 on the cell's edges, >= 1 off
    them), so ``H(., 0)`` is the cell's binomial system, ``H(., 1)`` is
    the generic system, and ``dH/dt`` stays finite on all of [0, 1].
    """

    def __init__(
        self,
        supports: Sequence[np.ndarray],
        coefficients: Sequence[np.ndarray],
        etas: Sequence[np.ndarray],
        kernel: str | None = None,
    ) -> None:
        self._nvars = int(supports[0].shape[1])
        if len(supports) != self._nvars:
            raise ValueError("cell homotopies need a square system")
        self._terms: list = []
        mono_index: Dict[Tuple[int, ...], int] = {}

        def intern(expo: Tuple[int, ...]) -> int:
            idx = mono_index.get(expo)
            if idx is None:
                idx = len(mono_index)
                mono_index[expo] = idx
            return idx

        res_rows, res_cols, res_coefs, res_etas = [], [], [], []
        jac_rows, jac_vars, jac_cols, jac_coefs, jac_etas = [], [], [], [], []
        dt_rows, dt_cols, dt_coefs, dt_etas = [], [], [], []
        for i, (support, coefs, eta) in enumerate(zip(supports, coefficients, etas)):
            for a, c, e in zip(support, coefs, eta):
                expo = tuple(int(v) for v in a)
                c = complex(c)
                e = float(e)
                self._terms.append(Term(row=i, expo=expo, coeff=c, eta=e))
                col = intern(expo)
                res_rows.append(i)
                res_cols.append(col)
                res_coefs.append(c)
                res_etas.append(e)
                if e > 0.0:
                    dt_rows.append(i)
                    dt_cols.append(col)
                    dt_coefs.append(c * e)
                    dt_etas.append(e - 1.0)
                for v, ev in enumerate(expo):
                    if ev == 0:
                        continue
                    reduced = list(expo)
                    reduced[v] = ev - 1
                    jac_rows.append(i)
                    jac_vars.append(v)
                    jac_cols.append(intern(tuple(reduced)))
                    jac_coefs.append(ev * c)
                    jac_etas.append(e)
        self._expos = np.zeros((max(1, len(mono_index)), self._nvars), dtype=np.int64)
        for expo, idx in mono_index.items():
            self._expos[idx] = expo
        self._res = (
            np.asarray(res_rows, dtype=np.int64),
            np.asarray(res_cols, dtype=np.int64),
            np.asarray(res_coefs, dtype=complex),
            np.asarray(res_etas, dtype=float),
        )
        self._jac = (
            np.asarray(jac_rows, dtype=np.int64),
            np.asarray(jac_vars, dtype=np.int64),
            np.asarray(jac_cols, dtype=np.int64),
            np.asarray(jac_coefs, dtype=complex),
            np.asarray(jac_etas, dtype=float),
        )
        self._dt = (
            np.asarray(dt_rows, dtype=np.int64),
            np.asarray(dt_cols, dtype=np.int64),
            np.asarray(dt_coefs, dtype=complex),
            np.asarray(dt_etas, dtype=float),
        )
        self._bind_kernel(kernel)

    def _bind_kernel(self, kernel: str | None) -> None:
        from ..kernels import compile_term_kernel, normalize_kernel

        self.kernel = normalize_kernel(kernel)
        if self.kernel == "slp":
            self._slp = compile_term_kernel(
                self._nvars, self._nvars, self._terms
            )
        else:
            # "naive" keeps the triplet-scatter arithmetic below; the
            # name is still recorded for reporting
            self._slp = None

    @property
    def kernels(self) -> tuple:
        """Bound kernel objects (for stats accounting); may be empty."""
        return (self._slp,) if self._slp is not None else ()

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_slp"] = None  # exec'd code doesn't pickle
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._bind_kernel(self.kernel)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._nvars

    def _mono(self, X: np.ndarray) -> np.ndarray:
        # (npts, nmono); one shared table per call, like the compiled
        # system evaluators (0**0 == 1 keeps constants right at z = 0)
        return np.prod(X[:, None, :] ** self._expos[None, :, :], axis=2)

    # ------------------------------------------------------------------
    # BatchHomotopy protocol (the scalar methods are one-row batches)
    # ------------------------------------------------------------------
    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        if self._slp is not None:
            return self._slp.evaluate(X, tt)
        rows, cols, coefs, etas = self._res
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            mono = self._mono(X)
            contrib = coefs[None, :] * (tt[:, None] ** etas[None, :]) * mono[:, cols]
        out = np.zeros((self._nvars, X.shape[0]), dtype=complex)
        np.add.at(out, rows, contrib.T)
        return out.T

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(X, t)[1]

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        if self._slp is not None:
            return self._slp.jacobian_t(X, tt)
        rows, cols, coefs, etas = self._dt
        out = np.zeros((self._nvars, X.shape[0]), dtype=complex)
        if len(rows):
            with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
                mono = self._mono(X)
                contrib = (
                    coefs[None, :] * (tt[:, None] ** etas[None, :]) * mono[:, cols]
                )
            np.add.at(out, rows, contrib.T)
        return out.T

    def evaluate_and_jacobian_batch(self, X, t):
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        if self._slp is not None:
            return self._slp.evaluate_and_jacobian(X, tt)
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            mono = self._mono(X)
            rows, cols, coefs, etas = self._res
            contrib = coefs[None, :] * (tt[:, None] ** etas[None, :]) * mono[:, cols]
            res = np.zeros((self._nvars, X.shape[0]), dtype=complex)
            np.add.at(res, rows, contrib.T)
            jrows, jvars, jcols, jcoefs, jetas = self._jac
            jac = np.zeros((self._nvars, self._nvars, X.shape[0]), dtype=complex)
            if len(jrows):
                jcontrib = (
                    jcoefs[None, :] * (tt[:, None] ** jetas[None, :]) * mono[:, jcols]
                )
                np.add.at(jac, (jrows, jvars), jcontrib.T)
        return res.T, jac.transpose(2, 0, 1)

    def jacobians_batch(self, X, t):
        # fused: one shared monomial table for both Jacobians (this is
        # the predictor's per-step call, the phase-1 hot loop)
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        if self._slp is not None:
            return self._slp.jacobians(X, tt)
        npts = X.shape[0]
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            mono = self._mono(X)
            jrows, jvars, jcols, jcoefs, jetas = self._jac
            jac = np.zeros((self._nvars, self._nvars, npts), dtype=complex)
            if len(jrows):
                jcontrib = (
                    jcoefs[None, :] * (tt[:, None] ** jetas[None, :]) * mono[:, jcols]
                )
                np.add.at(jac, (jrows, jvars), jcontrib.T)
            drows, dcols, dcoefs, detas = self._dt
            dt = np.zeros((self._nvars, npts), dtype=complex)
            if len(drows):
                dcontrib = (
                    dcoefs[None, :] * (tt[:, None] ** detas[None, :]) * mono[:, dcols]
                )
                np.add.at(dt, drows, dcontrib.T)
        return jac.transpose(2, 0, 1), dt.T

    # ------------------------------------------------------------------
    # scalar HomotopyFunction protocol
    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(
            np.asarray(x, dtype=complex)[None, :], t
        )[1][0]

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.jacobian_t_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def evaluate_and_jacobian_x(self, x, t):
        res, jac = self.evaluate_and_jacobian_batch(
            np.asarray(x, dtype=complex)[None, :], t
        )
        return res[0], jac[0]

    def __repr__(self) -> str:
        return f"CellHomotopy(dim={self._nvars}, nterms={len(self._res[0])})"


def _tightened(options: TrackerOptions) -> TrackerOptions:
    # dataclasses.replace keeps every field not listed at the caller's
    # value, so new TrackerOptions fields survive escalation untouched
    return dataclasses.replace(
        options,
        initial_step=max(options.initial_step / 4, options.min_step / 4),
        min_step=options.min_step / 4,
        max_step=max(options.max_step / 4, options.min_step),
        max_steps=options.max_steps * 4,
    )




class PolyhedralStart:
    """Mixed cells, generic system and tracked toric starts for a target.

    The constructor runs the cheap combinatorial work (subdivision +
    generic system); :meth:`track_starts` runs the per-cell homotopies
    and returns one start point per unit of mixed volume — the inputs
    the coefficient homotopy ``gamma (1-t) G + t F`` needs.

    >>> import numpy as np
    >>> from repro.systems import cyclic_roots_system
    >>> ps = PolyhedralStart(cyclic_roots_system(3), np.random.default_rng(0))
    >>> ps.mixed_volume
    6
    >>> starts, results = ps.track_starts()
    >>> len(starts), all(r.success for r in results)
    (6, True)
    """

    def __init__(
        self,
        target: PolynomialSystem,
        rng: np.random.Generator | None = None,
        affine: bool = True,
        lifting_bound: int = 4096,
        kernel: str | None = None,
    ) -> None:
        if not target.is_square():
            raise ValueError("polyhedral start systems need a square target")
        rng = np.random.default_rng() if rng is None else rng
        self.target = target
        self.kernel = kernel
        self.cell_kernels: List = []
        self.kernel_usage = KernelUsage([])
        self.subdivision: MixedSubdivision = mixed_cells(
            target, rng=rng, affine=affine, lifting_bound=lifting_bound
        )
        self.generic_system, self.coefficients = random_coefficient_system(
            self.subdivision.supports, rng
        )
        self.phase1_failures = 0

    @property
    def mixed_volume(self) -> int:
        return self.subdivision.mixed_volume

    @property
    def cells(self) -> List[MixedCell]:
        return self.subdivision.cells

    @property
    def lifting_seed(self) -> int | None:
        """Seed of the lifting stream (journaled for reproducibility)."""
        return self.subdivision.lifting_seed

    @property
    def relifts(self) -> int:
        """Degenerate liftings rejected before the subdivision's one."""
        return self.subdivision.relifts

    # ------------------------------------------------------------------
    def cell_homotopy(self, cell: MixedCell) -> CellHomotopy:
        """The cell's coefficient homotopy, slacks normalized to min 1."""
        positive = np.concatenate([e[e > 0] for e in cell.etas] or [np.zeros(0)])
        scale = 1.0 / float(positive.min()) if positive.size else 1.0
        # clamp positive slacks to >= 1 exactly: roundoff in the scaling
        # must not produce an exponent of 1 - eps, whose t-derivative
        # t**(-eps) blows up at t = 0
        etas = [
            np.where(e > 0, np.maximum(e * scale, 1.0), 0.0) for e in cell.etas
        ]
        homotopy = CellHomotopy(
            self.subdivision.supports,
            self.coefficients,
            etas,
            kernel=self.kernel,
        )
        self.cell_kernels.extend(homotopy.kernels)
        self.kernel_usage.add(homotopy.kernels)
        return homotopy

    def cell_starts(self, cell: MixedCell) -> np.ndarray:
        """The closed-form binomial roots seeding the cell's paths."""
        vmat = []
        beta = []
        for support, coefs, (p, q) in zip(
            self.subdivision.supports, self.coefficients, cell.edges
        ):
            vmat.append([int(v) for v in (support[q] - support[p])])
            beta.append(-complex(coefs[p]) / complex(coefs[q]))
        return solve_binomial_system(vmat, beta)

    def track_starts(
        self, options: TrackerOptions | None = None, endgame=None
    ) -> Tuple[np.ndarray, List[PathResult]]:
        """Track every cell's toric roots to the generic system.

        Returns ``(starts, results)``: a ``(mixed_volume, n)`` array of
        solutions of the generic system (one per path, cells
        concatenated in order) plus the per-path phase-1 results.
        Failed paths are retried once with conservative scalar options
        — unless the endgame already classified them (a Cauchy-measured
        singular endpoint is a verdict, not a numerical accident, so
        requeueing it cannot help) — and colliding endpoints, a
        predictor jump between close paths which would silently lose a
        root of the generic system, are re-tracked through the shared
        :func:`~repro.tracker.retrack_duplicate_clusters` escalation.
        A path that still fails keeps its binomial start (it will be
        reported failed again downstream rather than silently dropped),
        and is counted in :attr:`phase1_failures`.
        """
        opts = options or TrackerOptions()
        tracker = BatchTracker(opts, endgame=endgame)
        all_starts: List[np.ndarray] = []
        all_results: List[PathResult] = []
        path_homotopy: List[CellHomotopy] = []
        path_seed: List[np.ndarray] = []
        self.phase1_failures = 0
        offset = 0
        for cell in self.subdivision.cells:
            homotopy = self.cell_homotopy(cell)
            seeds = self.cell_starts(cell)
            results = tracker.track_batch(
                homotopy, seeds, path_ids=list(range(offset, offset + len(seeds)))
            )
            for k, result in enumerate(results):
                if not result.success and not result.endgame_classified:
                    retry = PathTracker(_tightened(opts), endgame=endgame).track(
                        homotopy, seeds[k], path_id=result.path_id
                    )
                    if retry.success:
                        results[k] = retry
            all_results.extend(results)
            path_homotopy.extend([homotopy] * len(seeds))
            path_seed.extend(np.asarray(s, dtype=complex) for s in seeds)
            offset += len(seeds)
        # endpoint collisions: re-track whole clusters with tighter steps
        # (all_results is ordered by path id, so ids index the lists);
        # the generic system has mixed_volume distinct regular roots, so
        # a collision here is always a predictor jump — the shared
        # escalation loop stops when a round reproduces every endpoint
        retrack_duplicate_clusters(
            all_results,
            lambda pid, o: PathTracker(o, endgame=endgame).track(
                path_homotopy[pid], path_seed[pid], path_id=pid
            ),
            _tightened,
            opts,
        )
        for pid, result in enumerate(all_results):
            if result.success and np.all(np.isfinite(result.solution)):
                all_starts.append(result.solution)
            else:
                self.phase1_failures += 1
                all_starts.append(path_seed[pid])
        starts = (
            np.asarray(all_starts, dtype=complex)
            if all_starts
            else np.zeros((0, self.target.nvars), dtype=complex)
        )
        return starts, all_results

    def __repr__(self) -> str:
        return (
            f"PolyhedralStart(mixed_volume={self.mixed_volume}, "
            f"cells={len(self.cells)})"
        )
