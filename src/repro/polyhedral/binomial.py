"""Binomial systems solved in closed form via Smith normal form.

Each mixed cell contributes the binomial start system

    c_a x^{a_i} + c_b x^{b_i} = 0,   i = 1..n

whose solutions in the torus are exactly the ``|det V|`` points with
``x^{v_i} = beta_i`` where ``v_i = b_i - a_i`` and
``beta_i = -c_a / c_b``.  Writing the Smith normal form
``U V W = S = diag(s_1, ..., s_n)`` with unimodular ``U, W`` turns the
monomial map into independent scalar equations: substituting
``x = y^W`` (entrywise ``x_i = prod_j y_j^{W_ij}``) gives
``y_i^{s_i} = prod_j beta_j^{U_ij}``, so each ``y_i`` ranges over the
``s_i``-th roots and ``prod s_i = |det V|`` solutions fall out — no
iteration, no conditioning questions (with unit-modulus coefficients
every intermediate stays on the unit circle).
"""

from __future__ import annotations

from itertools import product
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["smith_normal_form", "solve_binomial_system", "monomial_map"]


def _identity(n: int) -> List[List[int]]:
    return [[int(i == j) for j in range(n)] for i in range(n)]


def smith_normal_form(
    mat: Sequence[Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Smith normal form over the integers: ``U @ M @ W == S``.

    ``U`` and ``W`` are unimodular; ``S`` is diagonal with nonnegative
    entries, each dividing the next.  Exact (Python-int arithmetic),
    intended for the small exponent matrices of mixed cells.

    >>> U, S, W = smith_normal_form([[2, 4], [6, 8]])
    >>> S.tolist()
    [[2, 0], [0, 4]]
    >>> import numpy as np
    >>> (U @ np.array([[2, 4], [6, 8]]) @ W == S).all()
    np.True_
    """
    m = [[int(v) for v in row] for row in mat]
    n_rows, n_cols = len(m), len(m[0])
    u = _identity(n_rows)
    w = _identity(n_cols)

    def swap_rows(i, j):
        m[i], m[j] = m[j], m[i]
        u[i], u[j] = u[j], u[i]

    def swap_cols(i, j):
        for row in m:
            row[i], row[j] = row[j], row[i]
        for row in w:
            row[i], row[j] = row[j], row[i]

    def add_row(dst, src, k):  # row_dst += k * row_src
        m[dst] = [a + k * b for a, b in zip(m[dst], m[src])]
        u[dst] = [a + k * b for a, b in zip(u[dst], u[src])]

    def add_col(dst, src, k):
        for row in m:
            row[dst] += k * row[src]
        for row in w:
            row[dst] += k * row[src]

    def negate_row(i):
        m[i] = [-a for a in m[i]]
        u[i] = [-a for a in u[i]]

    rank = min(n_rows, n_cols)
    for t in range(rank):
        # move the smallest-magnitude nonzero entry of the trailing
        # block to the pivot, then kill its row and column by division
        while True:
            best = None
            for i in range(t, n_rows):
                for j in range(t, n_cols):
                    if m[i][j] != 0 and (best is None or abs(m[i][j]) < best[0]):
                        best = (abs(m[i][j]), i, j)
            if best is None:
                break  # trailing block is zero
            _, bi, bj = best
            if bi != t:
                swap_rows(t, bi)
            if bj != t:
                swap_cols(t, bj)
            done = True
            for i in range(t + 1, n_rows):
                q = m[i][t] // m[t][t]
                if q:
                    add_row(i, t, -q)
                if m[i][t]:
                    done = False
            for j in range(t + 1, n_cols):
                q = m[t][j] // m[t][t]
                if q:
                    add_col(j, t, -q)
                if m[t][j]:
                    done = False
            if done:
                # divisibility fix: pivot must divide the trailing block
                offender = None
                for i in range(t + 1, n_rows):
                    for j in range(t + 1, n_cols):
                        if m[i][j] % m[t][t]:
                            offender = i
                            break
                    if offender is not None:
                        break
                if offender is None:
                    break
                add_row(t, offender, 1)
        if t < n_rows and m[t][t] < 0:
            negate_row(t)
    return (
        np.array(u, dtype=np.int64),
        np.array(m, dtype=np.int64),
        np.array(w, dtype=np.int64),
    )


def monomial_map(mat: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Apply the monomial map ``x -> x^M``: output_i = prod_j x_j^{M_ij}.

    Entries of ``M`` may be negative; ``x`` must be torus points
    (every coordinate nonzero).
    """
    out = np.ones(mat.shape[0], dtype=complex)
    for i in range(mat.shape[0]):
        for j, e in enumerate(mat[i]):
            e = int(e)
            if e:
                out[i] *= complex(x[j]) ** e
    return out


def solve_binomial_system(
    vmat: Sequence[Sequence[int]], beta: Sequence[complex]
) -> np.ndarray:
    """All torus solutions of ``x^{v_i} = beta_i`` as an ``(|det|, n)`` array.

    >>> import numpy as np
    >>> sols = solve_binomial_system([[2, 0], [0, 1]], [1.0, 1.0])
    >>> sorted(float(round(s[0].real, 6)) for s in sols)
    [-1.0, 1.0]
    """
    vmat = np.asarray(vmat, dtype=np.int64)
    beta = np.asarray(beta, dtype=complex)
    n = vmat.shape[0]
    if vmat.shape != (n, n) or beta.shape != (n,):
        raise ValueError("need a square exponent matrix and one rhs per row")
    if np.any(beta == 0):
        raise ValueError("binomial right-hand sides must be nonzero")
    u, s, w = smith_normal_form(vmat)
    diag = [int(s[i, i]) for i in range(n)]
    if any(d == 0 for d in diag):
        raise ValueError("exponent matrix is singular; the cell has no volume")
    bprime = monomial_map(u, beta)
    roots_per_axis = []
    for i, d in enumerate(diag):
        radius = abs(bprime[i]) ** (1.0 / d)
        phase = np.angle(bprime[i])
        roots_per_axis.append(
            [radius * np.exp(1j * (phase + 2 * np.pi * k) / d) for k in range(d)]
        )
    sols = np.empty((int(np.prod(diag)), n), dtype=complex)
    for row, combo in enumerate(product(*roots_per_axis)):
        sols[row] = monomial_map(w, np.asarray(combo, dtype=complex))
    return sols
