"""Newton-polytope supports and liftings for the polyhedral homotopy.

The *support* of a polynomial is the set of exponent vectors of its
monomials; its convex hull is the Newton polytope.  The BKK theorem says
a square system with generic coefficients has exactly ``mixed_volume``
isolated solutions with all coordinates nonzero — usually far below both
the total-degree Bezout bound and the best m-homogeneous count, which is
what makes the polyhedral homotopy the sharp root-count half of a
PHCpack-style blackbox solver.

This module extracts supports from a :class:`~repro.polynomials.system.
PolynomialSystem`, draws the random integer liftings that induce the
mixed subdivision (:mod:`repro.polyhedral.cells`), and builds the
generic-coefficient system sharing those supports whose solutions the
per-cell homotopies produce.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..polynomials import Polynomial, PolynomialSystem

__all__ = [
    "supports_of",
    "augment_with_origin",
    "random_lifting",
    "coefficient_system",
    "random_coefficient_system",
]


def supports_of(system: PolynomialSystem) -> List[np.ndarray]:
    """The support of each equation as an ``(m_i, nvars)`` int array.

    Rows are sorted lexicographically so the support — and hence every
    cell index downstream — is deterministic for a given system.

    >>> from repro.polynomials import variables
    >>> x, y = variables(2)
    >>> [s.tolist() for s in supports_of(PolynomialSystem([x * y + x, y**2 - 1]))]
    [[[1, 0], [1, 1]], [[0, 0], [0, 2]]]
    """
    out = []
    for poly in system:
        expos = sorted(expo for expo, _ in poly.terms())
        if not expos:
            raise ValueError("zero polynomial has an empty support")
        out.append(np.asarray(expos, dtype=np.int64))
    return out


def augment_with_origin(supports: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Add the origin (a constant term) to every support missing it.

    The plain mixed volume counts roots in the *torus* — katsura's
    ``(1, 0, ..., 0)`` solution, with its zero coordinates, is invisible
    to it.  Augmenting every Newton polytope with the origin gives the
    affine root-count bound instead (the number of isolated roots in all
    of ``C^n``), which is what a blackbox solver needs: for katsura the
    augmented mixed volume equals the Bezout number, while for cyclic
    (whose ``x_1 ... x_n = 1`` equation pins every root to the torus)
    the count is unchanged.

    >>> import numpy as np
    >>> [a.tolist() for a in augment_with_origin([np.array([[1, 0], [1, 1]])])]
    [[[0, 0], [1, 0], [1, 1]]]
    """
    out = []
    for support in supports:
        support = np.asarray(support, dtype=np.int64)
        rows = {tuple(int(e) for e in row) for row in support}
        rows.add((0,) * support.shape[1])
        out.append(np.asarray(sorted(rows), dtype=np.int64))
    return out


def random_lifting(
    supports: Sequence[np.ndarray],
    rng: np.random.Generator,
    bound: int = 4096,
) -> List[np.ndarray]:
    """A random integer lifting value for every support point.

    Integer liftings keep the lower-hull test exact: cell normals are
    rational with bounded denominators, so ties (a point landing *on* a
    cell's supporting hyperplane — a non-generic lifting) are detected
    by exact integer arithmetic in :mod:`repro.polyhedral.cells` rather
    than by floating-point tolerance.  ``bound`` trades tie probability
    against the spread of the homotopy's t-exponents.
    """
    if bound < 2:
        raise ValueError("lifting bound must be at least 2")
    return [rng.integers(0, bound, size=len(s)).astype(np.int64) for s in supports]


def random_coefficient_system(
    supports: Sequence[np.ndarray],
    rng: np.random.Generator,
) -> tuple[PolynomialSystem, List[np.ndarray]]:
    """A system with the given supports and random unit-circle coefficients.

    By the BKK theorem this system has exactly ``mixed_volume(supports)``
    solutions in the torus (probability one), all regular — the generic
    anchor the per-cell homotopies track to, before the coefficient
    homotopy moves it to the actual target.  Unit-modulus coefficients
    keep the binomial start roots (ratios of coefficients) on the unit
    circle, which is as well-scaled as start solutions get.

    Returns ``(system, coefficients)`` where ``coefficients[i][k]`` is
    the coefficient of support row ``k`` of equation ``i`` — the
    row-aligned arrays the per-cell homotopies index by support row.
    """
    coefficients = [
        np.exp(2j * np.pi * rng.random(len(support))) for support in supports
    ]
    return coefficient_system(supports, coefficients), coefficients


def coefficient_system(
    supports: Sequence[np.ndarray],
    coefficients: Sequence[np.ndarray],
) -> PolynomialSystem:
    """The system with the given supports and row-aligned coefficients.

    The inverse of taking ``(supports_of(system), coefficient rows)`` —
    used to rebuild a cached generic system from an artifact-store
    record (:mod:`repro.artifacts`) exactly as it was first drawn.
    """
    polys = []
    for support, coeffs in zip(supports, coefficients):
        nvars = support.shape[1]
        polys.append(
            Polynomial(
                {
                    tuple(int(e) for e in row): complex(c)
                    for row, c in zip(support, coeffs)
                },
                nvars,
            )
        )
    return PolynomialSystem(polys)
