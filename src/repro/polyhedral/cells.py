"""Mixed-cell enumeration by the lower-hull test (the BKK machinery).

Lift every support point ``a`` of equation ``i`` to ``(a, w_i(a))`` with
the random integer lifting ``w``.  A *mixed cell* is a choice of one
edge per support such that some vector ``gamma`` makes exactly the two
chosen points of every lifted support minimal under
``<., (gamma, 1)>`` — i.e. the Minkowski sum of the chosen edges is a
lower facet of the lifted Cayley/Minkowski configuration.  The mixed
volume is the sum of ``|det|`` of the edge-direction matrices over all
mixed cells, and each cell seeds a binomial start system with that many
toric roots (:mod:`repro.polyhedral.binomial`).

Enumeration is exhaustive with pruning, which is plenty at this repo's
sizes (supports of a dozen points, dimension <= 10):

1. per-support *lower-edge* filter — an edge that is not a lower edge
   of its own lifted support can never enter a cell;
2. a pairwise *relation table* — LP feasibility for every pair of
   surviving edges from different supports; a cell's edges must be
   pairwise compatible, so the table prunes most of the product space
   before any joint test runs;
3. depth-first search over supports (fewest edges first) with forward
   checking against the relation table, an incremental rank test on the
   edge directions (dependent directions can never reach a nonzero
   determinant), and a joint LP feasibility test
   (:func:`repro.polyhedral.lp.lp_feasible`) at every interior node;
4. exact leaf verification in integer/rational arithmetic: the unique
   ``gamma`` of a candidate cell solves an integer linear system, so
   every "every other lifted point lies strictly above" slack is a
   rational number that is compared to zero *exactly* — a zero slack
   means the lifting was degenerate and is reported as
   :class:`DegenerateLiftingError` (the caller re-lifts) instead of
   being silently mis-counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..polynomials import PolynomialSystem
from .lp import lp_feasible
from .supports import augment_with_origin, random_lifting, supports_of

__all__ = [
    "DegenerateLiftingError",
    "MixedCell",
    "MixedSubdivision",
    "induced_subdivision",
    "mixed_cells",
    "mixed_volume",
]


class DegenerateLiftingError(RuntimeError):
    """The lifting put a support point *on* a cell's supporting hyperplane."""


@dataclass(frozen=True)
class MixedCell:
    """One mixed cell: an edge per equation plus its lower-hull data.

    Attributes
    ----------
    edges:
        Per equation (original order), the pair of row indices into the
        equation's support (see :func:`repro.polyhedral.supports.
        supports_of`) spanning the cell's edge.
    volume:
        ``|det|`` of the edge-direction matrix — the number of toric
        start roots this cell contributes.
    gamma:
        The inner normal certifying the cell (float; the exact value is
        rational and only used internally).
    etas:
        Per equation, the nonnegative lifted slacks of every support
        point relative to the cell (zero exactly on the two edge
        points).  These become the powers of the continuation parameter
        in the cell's polyhedral homotopy.
    """

    edges: Tuple[Tuple[int, int], ...]
    volume: int
    gamma: np.ndarray
    etas: Tuple[np.ndarray, ...]


@dataclass
class MixedSubdivision:
    """The mixed cells induced by one lifting of one support tuple."""

    supports: List[np.ndarray]
    lifting: List[np.ndarray]
    cells: List[MixedCell]
    #: seed of the dedicated lifting stream (:func:`mixed_cells`); with
    #: :attr:`relifts` it makes a degenerate-lifting retry reproducible
    #: from a sweep journal: ``default_rng(lifting_seed)`` drawn
    #: ``relifts + 1`` times lands on exactly this lifting
    lifting_seed: Optional[int] = None
    #: how many degenerate liftings were rejected before this one
    relifts: int = 0
    #: the bound the lifting values were drawn under (replay needs it)
    lifting_bound: int = 4096

    @property
    def mixed_volume(self) -> int:
        return sum(c.volume for c in self.cells)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        return (
            f"MixedSubdivision(n={len(self.supports)}, "
            f"cells={self.n_cells}, mixed_volume={self.mixed_volume})"
        )


# ----------------------------------------------------------------------
# exact integer/rational helpers (leaf verification)
# ----------------------------------------------------------------------

def _solve_exact(
    vmat: List[List[int]], rhs: List[int]
) -> Tuple[int, Optional[List[Fraction]]]:
    """Solve ``V gamma = r`` over the rationals; returns ``(det, gamma)``.

    ``det`` is the exact integer determinant of ``V``; ``gamma`` is
    ``None`` when ``det == 0``.
    """
    n = len(vmat)
    aug = [[Fraction(v) for v in row] + [Fraction(rhs[i])] for i, row in enumerate(vmat)]
    det = Fraction(1)
    for col in range(n):
        piv = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if piv is None:
            return 0, None
        if piv != col:
            aug[col], aug[piv] = aug[piv], aug[col]
            det = -det
        det *= aug[col][col]
        inv = 1 / aug[col][col]
        aug[col] = [v * inv for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                f = aug[r][col]
                aug[r] = [a - f * b for a, b in zip(aug[r], aug[col])]
    assert det.denominator == 1
    return int(det), [aug[r][n] for r in range(n)]


# ----------------------------------------------------------------------
# the enumeration
# ----------------------------------------------------------------------

class _Enumerator:
    """One lower-hull sweep over a fixed (supports, lifting) pair."""

    def __init__(self, supports: Sequence[np.ndarray], lifting: Sequence[np.ndarray]):
        self.n = supports[0].shape[1]
        if len(supports) != self.n:
            raise ValueError(
                f"mixed cells need a square system: {len(supports)} supports "
                f"in {self.n} variables"
            )
        for s, w in zip(supports, lifting):
            if len(s) != len(w):
                raise ValueError("lifting must assign one value per support point")
        # fewest-edges-first ordering shrinks the search tree
        self.order = sorted(range(self.n), key=lambda i: len(supports[i]))
        self.supports = [np.asarray(supports[i], dtype=np.int64) for i in self.order]
        self.lifting = [np.asarray(lifting[i], dtype=np.int64) for i in self.order]
        self.cells: List[MixedCell] = []

    def run(self) -> List[MixedCell]:
        if any(len(s) < 2 for s in self.supports):
            return []  # a point support has zero mixed volume with anything
        self._build_edge_tables()
        if any(len(e) == 0 for e in self.edges):
            return []
        self._build_relation_table()
        allowed = [np.ones(len(self.edges[d]), dtype=bool) for d in range(self.n)]
        self._dfs(0, allowed, [], [])
        return self.cells

    # -- stage 1: per-support lower edges ------------------------------
    def _build_edge_tables(self) -> None:
        n = self.n
        self.edges: List[List[Tuple[int, int]]] = []
        self.eq_rows: List[np.ndarray] = []   # per support: (nedges, n) directions
        self.eq_rhs: List[np.ndarray] = []
        self.ub_rows: List[List[np.ndarray]] = []  # per support, per edge
        self.ub_rhs: List[List[np.ndarray]] = []
        for d in range(n):
            pts = self.supports[d].astype(float)
            w = self.lifting[d].astype(float)
            m = len(pts)
            keep, eqa, eqb, uba, ubb = [], [], [], [], []
            for p, q in combinations(range(m), 2):
                erow = pts[q] - pts[p]
                erhs = w[p] - w[q]
                others = [c for c in range(m) if c != p and c != q]
                # minimality of point p over the rest of the support:
                # <p - c, gamma> <= w_c - w_p
                arows = pts[p][None, :] - pts[others]
                brhs = w[others] - w[p]
                if lp_feasible(erow[None, :], np.array([erhs]), arows, brhs):
                    keep.append((p, q))
                    eqa.append(erow)
                    eqb.append(erhs)
                    uba.append(arows)
                    ubb.append(brhs)
            self.edges.append(keep)
            self.eq_rows.append(np.array(eqa) if eqa else np.zeros((0, n)))
            self.eq_rhs.append(np.array(eqb) if eqb else np.zeros(0))
            self.ub_rows.append(uba)
            self.ub_rhs.append(ubb)

    # -- stage 2: pairwise relation table ------------------------------
    def _build_relation_table(self) -> None:
        n = self.n
        self.compat: List[List[Optional[np.ndarray]]] = [
            [None] * n for _ in range(n)
        ]
        for d1 in range(n):
            for d2 in range(d1 + 1, n):
                e1, e2 = self.edges[d1], self.edges[d2]
                table = np.zeros((len(e1), len(e2)), dtype=bool)
                for i in range(len(e1)):
                    eq_a1 = self.eq_rows[d1][i]
                    eq_b1 = self.eq_rhs[d1][i]
                    ub_a1, ub_b1 = self.ub_rows[d1][i], self.ub_rhs[d1][i]
                    for j in range(len(e2)):
                        table[i, j] = lp_feasible(
                            np.vstack([eq_a1[None, :], self.eq_rows[d2][j][None, :]]),
                            np.array([eq_b1, self.eq_rhs[d2][j]]),
                            np.vstack([ub_a1, self.ub_rows[d2][j]]),
                            np.concatenate([ub_b1, self.ub_rhs[d2][j]]),
                        )
                self.compat[d1][d2] = table

    # -- stage 3: depth-first search -----------------------------------
    def _dfs(
        self,
        depth: int,
        allowed: List[np.ndarray],
        chosen: List[int],
        basis: List[np.ndarray],
    ) -> None:
        n = self.n
        for eidx in np.flatnonzero(allowed[depth]):
            if depth == n - 1:
                cell = self._verify_leaf(chosen + [int(eidx)])
                if cell is not None:
                    self.cells.append(cell)
                continue
            # incremental rank: dependent directions can never reach det != 0
            v = self.eq_rows[depth][eidx].copy()
            for b in basis:
                v -= (v @ b) * b
            norm = float(np.linalg.norm(v))
            if norm < 1e-9:
                continue
            # forward-check the relation table for every future support
            new_allowed = allowed[: depth + 1] + [
                allowed[j] & self.compat[depth][j][eidx] for j in range(depth + 1, n)
            ]
            if any(not a.any() for a in new_allowed[depth + 1 :]):
                continue
            chosen.append(int(eidx))
            if depth >= 2 and not self._partial_feasible(chosen):
                chosen.pop()
                continue
            basis.append(v / norm)
            self._dfs(depth + 1, new_allowed, chosen, basis)
            basis.pop()
            chosen.pop()

    def _partial_feasible(self, chosen: List[int]) -> bool:
        eq_a = np.vstack([self.eq_rows[d][e][None, :] for d, e in enumerate(chosen)])
        eq_b = np.array([self.eq_rhs[d][e] for d, e in enumerate(chosen)])
        ub_a = np.vstack([self.ub_rows[d][e] for d, e in enumerate(chosen)])
        ub_b = np.concatenate([self.ub_rhs[d][e] for d, e in enumerate(chosen)])
        return lp_feasible(eq_a, eq_b, ub_a, ub_b)

    # -- stage 4: exact leaf verification ------------------------------
    def _verify_leaf(self, chosen: List[int]) -> Optional[MixedCell]:
        n = self.n
        pairs = [self.edges[d][e] for d, e in enumerate(chosen)]
        vmat = [
            [int(v) for v in (self.supports[d][q] - self.supports[d][p])]
            for d, (p, q) in enumerate(pairs)
        ]
        rhs = [int(self.lifting[d][p] - self.lifting[d][q]) for d, (p, q) in enumerate(pairs)]
        gamma_f = self._float_gamma(vmat, rhs)
        if gamma_f is not None:
            ok, borderline, etas = self._float_slacks(pairs, gamma_f)
            if ok and not borderline:
                det = _int_det(vmat)
                if det == 0:  # float solve lied; fall through to exact
                    gamma_f = None
                else:
                    return self._make_cell(pairs, abs(det), gamma_f, etas)
            elif not ok and not borderline:
                return None
        # exact path: singular/borderline float arithmetic
        det, gamma = _solve_exact(vmat, rhs)
        if det == 0:
            return None
        etas = []
        for d, (p, q) in enumerate(pairs):
            pts, w = self.supports[d], self.lifting[d]
            base = sum(int(pts[p][k]) * gamma[k] for k in range(n)) + int(w[p])
            sl = []
            for c in range(len(pts)):
                s = sum(int(pts[c][k]) * gamma[k] for k in range(n)) + int(w[c]) - base
                if s == 0 and c != p and c != q:
                    raise DegenerateLiftingError(
                        f"support point {c} of equation {d} ties the cell "
                        f"hyperplane; re-lift"
                    )
                if s < 0:
                    return None
                sl.append(float(s))
            etas.append(np.array(sl))
        gamma_f = np.array([float(g) for g in gamma])
        return self._make_cell(pairs, abs(det), gamma_f, etas)

    def _float_gamma(self, vmat, rhs) -> Optional[np.ndarray]:
        try:
            g = np.linalg.solve(np.array(vmat, dtype=float), np.array(rhs, dtype=float))
        except np.linalg.LinAlgError:
            return None
        return g if np.all(np.isfinite(g)) else None

    def _float_slacks(self, pairs, gamma):
        """Per-point slacks; flags any slack too close to zero to trust."""
        ok, borderline, etas = True, False, []
        for d, (p, q) in enumerate(pairs):
            pts = self.supports[d].astype(float)
            w = self.lifting[d].astype(float)
            vals = pts @ gamma + w
            sl = vals - vals[p]
            sl[p] = 0.0
            sl[q] = 0.0
            others = np.ones(len(pts), dtype=bool)
            others[[p, q]] = False
            if np.any(np.abs(sl[others]) < 1e-6 * max(1.0, float(np.max(np.abs(vals))))):
                borderline = True
            if np.any(sl[others] < 0):
                ok = False
            etas.append(np.maximum(sl, 0.0))
        return ok, borderline, etas

    def _make_cell(self, pairs, volume, gamma, etas) -> MixedCell:
        # map internal (fewest-edges-first) order back to equation order
        edges_orig: List[Tuple[int, int]] = [(-1, -1)] * self.n
        etas_orig: List[np.ndarray] = [np.zeros(0)] * self.n
        for d, orig in enumerate(self.order):
            edges_orig[orig] = pairs[d]
            etas_orig[orig] = etas[d]
        return MixedCell(
            edges=tuple(edges_orig),
            volume=int(volume),
            gamma=np.asarray(gamma, dtype=float),
            etas=tuple(etas_orig),
        )


def _int_det(vmat: List[List[int]]) -> int:
    """Exact determinant of an integer matrix (Bareiss elimination)."""
    n = len(vmat)
    m = [row[:] for row in vmat]
    sign, prev = 1, 1
    for k in range(n - 1):
        if m[k][k] == 0:
            piv = next((i for i in range(k + 1, n) if m[i][k] != 0), None)
            if piv is None:
                return 0
            m[k], m[piv] = m[piv], m[k]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
            m[i][k] = 0
        prev = m[k][k]
    return sign * m[n - 1][n - 1]


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------

def induced_subdivision(
    supports: Sequence[np.ndarray], lifting: Sequence[np.ndarray]
) -> MixedSubdivision:
    """Enumerate the mixed cells induced by one specific lifting.

    Raises :class:`DegenerateLiftingError` when the lifting is not
    generic (a support point lies exactly on a cell's hyperplane).
    """
    supports = [np.asarray(s, dtype=np.int64) for s in supports]
    lifting = [np.asarray(w, dtype=np.int64) for w in lifting]
    cells = _Enumerator(supports, lifting).run()
    return MixedSubdivision(supports=supports, lifting=lifting, cells=cells)


def mixed_cells(
    system_or_supports: PolynomialSystem | Sequence[np.ndarray],
    rng: np.random.Generator | None = None,
    affine: bool = True,
    lifting_bound: int = 4096,
    max_retries: int = 5,
) -> MixedSubdivision:
    """Mixed cells of a system (or raw supports), re-lifting on degeneracy.

    With ``affine=True`` (the default) every support is augmented with
    the origin first (see :func:`repro.polyhedral.supports.
    augment_with_origin`), so the cell count bounds *all* isolated
    affine roots — the bound a blackbox solver wants, and the convention
    under which katsura's mixed volume equals its Bezout number.
    ``affine=False`` gives the plain BKK torus count.

    >>> import numpy as np
    >>> from repro.polynomials import PolynomialSystem, variables
    >>> x, y = variables(2)
    >>> sub = mixed_cells(PolynomialSystem([x * y + x + 1, x + y + 1]),
    ...                   rng=np.random.default_rng(0))
    >>> sub.mixed_volume
    2
    """
    if isinstance(system_or_supports, PolynomialSystem):
        supports = supports_of(system_or_supports)
    else:
        supports = [np.asarray(s, dtype=np.int64) for s in system_or_supports]
    if affine:
        supports = augment_with_origin(supports)
    rng = np.random.default_rng() if rng is None else rng
    # one explicit seed for a dedicated lifting stream: journaling
    # (seed, relifts) makes a DegenerateLiftingError retry reproducible
    # — replaying the stream re-derives the exact lifting that won —
    # and lets cached mixed cells be validated against the journal
    lifting_seed = int(rng.integers(0, 2**63))
    lift_rng = np.random.default_rng(lifting_seed)
    last: DegenerateLiftingError | None = None
    for attempt in range(max_retries):
        lifting = random_lifting(supports, lift_rng, bound=lifting_bound)
        try:
            subdivision = induced_subdivision(supports, lifting)
        except DegenerateLiftingError as exc:  # pragma: no cover - rare
            last = exc
            continue
        subdivision.lifting_seed = lifting_seed
        subdivision.relifts = attempt
        subdivision.lifting_bound = lifting_bound
        return subdivision
    raise DegenerateLiftingError(
        f"no generic lifting found in {max_retries} attempts"
    ) from last  # pragma: no cover


def mixed_volume(
    system_or_supports: PolynomialSystem | Sequence[np.ndarray],
    rng: np.random.Generator | None = None,
    affine: bool = True,
    **kwargs,
) -> int:
    """The mixed volume of a square system (BKK root-count bound).

    ``affine=True`` (default) bounds the isolated roots in ``C^n``;
    ``affine=False`` bounds roots in the torus only.

    >>> import numpy as np
    >>> from repro.systems import cyclic_roots_system
    >>> mixed_volume(cyclic_roots_system(3), rng=np.random.default_rng(0))
    6
    """
    return mixed_cells(
        system_or_supports, rng=rng, affine=affine, **kwargs
    ).mixed_volume
