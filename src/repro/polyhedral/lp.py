"""A small dual-simplex LP feasibility kernel for the lower-hull test.

Mixed-cell enumeration needs one primitive: *is there a vector gamma
satisfying these equalities and inequalities?*  (The equalities say the
chosen edge of each lifted support is level under gamma; the
inequalities say every other lifted point lies above.)  The systems are
tiny — at most ``nvars`` equalities and a few dozen inequalities — so a
dense tableau kernel beats pulling in an external solver, and keeping it
here makes the enumeration's pruning logic auditable end to end.

The kernel works in two stages:

1. eliminate the equality constraints by parametrizing their solution
   set (particular solution + nullspace via SVD), leaving a pure
   inequality system ``A z <= b`` in the nullspace coordinates;
2. run the dual simplex on the all-slack basis: with a zero objective
   the basis is dual-feasible from the start, and each pivot repairs one
   primal infeasibility.  Bland's smallest-index rule on both the
   leaving and entering choice guarantees termination.

The enumeration uses feasibility answers only to *prune* partial cells,
and verifies every surviving cell exactly in integer arithmetic
(:mod:`repro.polyhedral.cells`), so the kernel is allowed to err on the
side of ``True`` — the iteration-cap fallback — but must never declare
a feasible system infeasible.  Infeasibility is therefore only reported
with a certificate row in hand (all tableau entries nonnegative against
a negative right-hand side).
"""

from __future__ import annotations

import numpy as np

__all__ = ["lp_feasible", "inequalities_feasible"]

#: slack below which a tableau entry counts as "could be negative"; data
#: entering the kernel is integral with magnitudes ~1e3, so true
#: violations are orders of magnitude above float noise
_TOL = 1e-9


def inequalities_feasible(
    A: np.ndarray, b: np.ndarray, tol: float = _TOL
) -> bool:
    """Does ``A z <= b`` admit a solution (z free)?  Dual simplex.

    >>> import numpy as np
    >>> inequalities_feasible(np.array([[1.0], [-1.0]]), np.array([1.0, 1.0]))
    True
    >>> inequalities_feasible(np.array([[1.0], [-1.0]]), np.array([-2.0, 3.0]))
    True
    >>> inequalities_feasible(np.array([[1.0], [-1.0]]), np.array([-2.0, 1.0]))
    False
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    b = np.asarray(b, dtype=float)
    m, d = A.shape
    if m == 0:
        return True
    if d == 0:
        return bool(np.all(b >= -tol))
    # columns: u (d), v (d) with z = u - v, then m slacks; all >= 0
    ncols = 2 * d + m
    T = np.hstack([A, -A, np.eye(m), b[:, None]])
    basis = np.arange(2 * d, ncols)
    for _ in range(60 * (m + d + 4)):
        rhs = T[:, -1]
        bad = np.flatnonzero(rhs < -tol)
        if bad.size == 0:
            return True
        # Bland (dual): leave on the smallest basic-variable index
        r = bad[np.argmin(basis[bad])]
        row = T[r, :ncols]
        elig = np.flatnonzero(row < -tol)
        if elig.size == 0:
            # certificate: a nonnegative combination equals a negative rhs
            return False
        j = elig[0]  # zero objective: every eligible ratio ties at 0
        piv = T[r] / T[r, j]
        T -= np.outer(T[:, j], piv)
        T[r] = piv
        basis[r] = j
    # iteration cap: unresolved, so err on the prune-safe side
    return True


def lp_feasible(
    A_eq: np.ndarray | None,
    b_eq: np.ndarray | None,
    A_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    tol: float = _TOL,
) -> bool:
    """Is ``{A_eq x = b_eq, A_ub x <= b_ub}`` feasible (x free)?

    Either constraint block may be ``None``/empty.  Equalities are
    eliminated first; inconsistent equalities are infeasible outright.

    >>> import numpy as np
    >>> lp_feasible(np.array([[1.0, 1.0]]), np.array([2.0]),
    ...             np.array([[1.0, 0.0]]), np.array([5.0]))
    True
    >>> lp_feasible(np.array([[1.0, 0.0], [2.0, 0.0]]), np.array([1.0, 3.0]),
    ...             None, None)
    False
    """
    if A_eq is None or len(A_eq) == 0:
        if A_ub is None or len(A_ub) == 0:
            return True
        return inequalities_feasible(np.asarray(A_ub), np.asarray(b_ub), tol)
    A_eq = np.atleast_2d(np.asarray(A_eq, dtype=float))
    b_eq = np.asarray(b_eq, dtype=float)
    n = A_eq.shape[1]
    u, s, vt = np.linalg.svd(A_eq, full_matrices=True)
    rank = int(np.sum(s > max(tol, 1e-12 * (s[0] if s.size else 0.0))))
    # particular solution by pseudo-inverse; check consistency
    s_inv = np.zeros_like(s)
    s_inv[:rank] = 1.0 / s[:rank]
    x0 = vt[: s.size].T @ (s_inv * (u.T[: s.size] @ b_eq))
    resid = A_eq @ x0 - b_eq
    scale = max(1.0, float(np.max(np.abs(b_eq), initial=0.0)))
    if np.max(np.abs(resid), initial=0.0) > 1e-6 * scale:
        return False
    null = vt[rank:].T  # (n, n - rank)
    if A_ub is None or len(A_ub) == 0:
        return True
    A_ub = np.atleast_2d(np.asarray(A_ub, dtype=float))
    b_red = np.asarray(b_ub, dtype=float) - A_ub @ x0
    if null.shape[1] == 0:
        return bool(np.all(b_red >= -1e-6 * max(1.0, float(np.max(np.abs(b_ub))))))
    return inequalities_feasible(A_ub @ null, b_red, tol)
