"""Polyhedral homotopy: mixed volumes, mixed cells, toric start systems.

The sparse half of a PHCpack-style blackbox solver: Newton-polytope
supports, random integer liftings, mixed-cell enumeration by the
lower-hull test, binomial start systems solved in closed form, and the
per-cell coefficient homotopies that track their toric roots to a
generic system — which `repro.homotopy.solve(start="polyhedral")` then
carries to the actual target.
"""

from .supports import (
    augment_with_origin,
    random_coefficient_system,
    random_lifting,
    supports_of,
)
from .lp import inequalities_feasible, lp_feasible
from .cells import (
    DegenerateLiftingError,
    MixedCell,
    MixedSubdivision,
    induced_subdivision,
    mixed_cells,
    mixed_volume,
)
from .binomial import monomial_map, smith_normal_form, solve_binomial_system
from .homotopy import CellHomotopy, PolyhedralStart

__all__ = [
    "supports_of",
    "augment_with_origin",
    "random_lifting",
    "random_coefficient_system",
    "lp_feasible",
    "inequalities_feasible",
    "DegenerateLiftingError",
    "MixedCell",
    "MixedSubdivision",
    "induced_subdivision",
    "mixed_cells",
    "mixed_volume",
    "smith_normal_form",
    "solve_binomial_system",
    "monomial_map",
    "CellHomotopy",
    "PolyhedralStart",
]
