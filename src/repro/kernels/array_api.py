"""The array-API seam under the generated kernels.

Generated straight-line programs never import numpy themselves: every
array they allocate comes from an :class:`ArrayBackend` handed in at
call time.  The default backend is plain numpy, but anything exposing
``empty``/``zeros``/``full`` with numpy semantics (a CuPy module, an
array-api-compat namespace) slots in without touching the generated
source — the door the roadmap leaves open to GPU arrays.

The backend deliberately exposes only what the code generator emits:
allocation.  All arithmetic in a straight-line program is operator
syntax (``*``, ``+``, ``**``) on whatever array type the caller passed
in, so the compute follows the input arrays' library automatically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayBackend", "NUMPY_BACKEND", "get_array_backend"]


class ArrayBackend:
    """A named allocation namespace for generated kernels.

    Parameters
    ----------
    name:
        Registry key (``"numpy"`` is built in).
    xp:
        Module-like namespace providing ``empty``, ``zeros`` and
        ``full`` with numpy calling conventions.
    """

    __slots__ = ("name", "xp")

    def __init__(self, name: str, xp) -> None:
        self.name = name
        self.xp = xp

    def __repr__(self) -> str:
        return f"ArrayBackend({self.name!r})"


NUMPY_BACKEND = ArrayBackend("numpy", np)

_REGISTRY = {"numpy": NUMPY_BACKEND}


def get_array_backend(name_or_backend=None) -> ArrayBackend:
    """Resolve ``None`` / a name / an :class:`ArrayBackend` instance."""
    if name_or_backend is None:
        return NUMPY_BACKEND
    if isinstance(name_or_backend, ArrayBackend):
        return name_or_backend
    try:
        return _REGISTRY[name_or_backend]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name_or_backend!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def register_array_backend(backend: ArrayBackend) -> None:
    """Register an alternative allocation namespace (e.g. CuPy)."""
    _REGISTRY[backend.name] = backend
