"""Tape and kernel memoization keyed by structure fingerprints.

Taping a system is a one-time cost, but the sweep engine's common case
is *families*: hundreds of jobs solving systems with identical supports
and (often) identical coefficients inside one worker process.  Two
cache levels make repeated solves pay taping once:

- the **tape cache** keys on the *structure fingerprint* (equation
  count, variable count, and the ordered ``(row, exponent, eta)``
  support triplets) — systems from the same family share one tape and
  hence one set of generated-and-compiled code objects;
- the **kernel cache** keys on structure fingerprint *plus* the
  coefficient hash — the fully bound kernel (constants folded into the
  per-program tables) is reused verbatim when the exact same system
  comes back.

Both caches are process-local and softly capped: inserting beyond the
cap evicts the oldest entry, so a sweep over thousands of
random-coefficient systems cannot grow them without bound.  The cap
defaults to 256 and is configurable — per process via
:func:`set_kernel_cache_capacity`, or at import through the
``$REPRO_KERNEL_CACHE_CAP`` environment variable (the sweep engine
forwards it to workers); eviction counts are surfaced by
:func:`kernel_cache_info`.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Sequence, Tuple

import numpy as np

from .slp import SLPKernel, SLPTape, Term, build_tape

__all__ = [
    "structure_fingerprint",
    "coefficient_fingerprint",
    "cached_tape",
    "cached_slp_kernel",
    "kernel_cache_info",
    "set_kernel_cache_capacity",
    "clear_kernel_cache",
]

CAPACITY_ENV = "REPRO_KERNEL_CACHE_CAP"
_DEFAULT_CAPACITY = 256


def _env_capacity() -> int:
    raw = os.environ.get(CAPACITY_ENV)
    if not raw:
        return _DEFAULT_CAPACITY
    try:
        return max(1, int(raw))
    except ValueError:
        return _DEFAULT_CAPACITY


_capacity = _env_capacity()

_TAPES: Dict[str, SLPTape] = {}
_KERNELS: Dict[Tuple[str, str], SLPKernel] = {}
_HITS = {"tape": 0, "kernel": 0}
_MISSES = {"tape": 0, "kernel": 0}
_EVICTIONS = {"tape": 0, "kernel": 0}


def set_kernel_cache_capacity(capacity: int | None) -> int:
    """Set the soft cap shared by both caches; returns the cap in force.

    ``None`` restores the default (the ``$REPRO_KERNEL_CACHE_CAP``
    environment variable, else 256).  Shrinking evicts oldest entries
    immediately; eviction counts land in :func:`kernel_cache_info`.
    """
    global _capacity
    _capacity = _env_capacity() if capacity is None else max(1, int(capacity))
    _evict(_TAPES, "tape")
    _evict(_KERNELS, "kernel")
    return _capacity


def _evict(cache: dict, kind: str) -> None:
    while len(cache) > _capacity:
        cache.pop(next(iter(cache)))
        _EVICTIONS[kind] += 1


def structure_fingerprint(
    neqs: int, nvars: int, terms: Sequence[Term], has_t: bool
) -> str:
    """Hash of the support structure (coefficients excluded)."""
    h = hashlib.sha1(f"{neqs}|{nvars}|{int(has_t)}".encode())
    for t in terms:
        h.update(f"{t.row};{t.expo};{t.eta!r}".encode())
    return h.hexdigest()


def coefficient_fingerprint(coefficients: Sequence[complex]) -> str:
    """Hash of the exact coefficient values, in term order."""
    return hashlib.sha1(
        np.asarray(coefficients, dtype=complex).tobytes()
    ).hexdigest()


def cached_tape(
    neqs: int, nvars: int, terms: Sequence[Term], has_t: bool
) -> Tuple[SLPTape, bool]:
    """The structure's tape, built at most once; returns (tape, hit)."""
    key = structure_fingerprint(neqs, nvars, terms, has_t)
    tape = _TAPES.get(key)
    if tape is not None:
        _HITS["tape"] += 1
        return tape, True
    _MISSES["tape"] += 1
    tape = build_tape(neqs, nvars, terms, has_t=has_t)
    _TAPES[key] = tape
    _evict(_TAPES, "tape")
    return tape, False


def cached_slp_kernel(
    neqs: int, nvars: int, terms: Sequence[Term], has_t: bool = False
) -> SLPKernel:
    """The fully bound SLP kernel, memoized by (structure, coefficients)."""
    skey = structure_fingerprint(neqs, nvars, terms, has_t)
    coefficients = [t.coeff for t in terms]
    key = (skey, coefficient_fingerprint(coefficients))
    kernel = _KERNELS.get(key)
    if kernel is not None:
        _HITS["kernel"] += 1
        return kernel
    _MISSES["kernel"] += 1
    tape = _TAPES.get(skey)
    if tape is None:
        _MISSES["tape"] += 1
        tape = build_tape(neqs, nvars, terms, has_t=has_t)
        _TAPES[skey] = tape
        _evict(_TAPES, "tape")
        taping_seconds, cache_hit = tape.build_seconds, False
    else:
        _HITS["tape"] += 1
        taping_seconds, cache_hit = 0.0, True
    kernel = SLPKernel(
        tape,
        coefficients,
        taping_seconds=taping_seconds,
        cache_hit=cache_hit,
    )
    _KERNELS[key] = kernel
    _evict(_KERNELS, "kernel")
    return kernel


def kernel_cache_info() -> dict:
    """Sizes and hit/miss counters of the process-local kernel caches."""
    return {
        "tapes": len(_TAPES),
        "kernels": len(_KERNELS),
        "capacity": _capacity,
        "tape_hits": _HITS["tape"],
        "kernel_hits": _HITS["kernel"],
        "tape_misses": _MISSES["tape"],
        "kernel_misses": _MISSES["kernel"],
        "tape_evictions": _EVICTIONS["tape"],
        "kernel_evictions": _EVICTIONS["kernel"],
    }


def clear_kernel_cache() -> None:
    """Drop every memoized tape and kernel (mostly for tests)."""
    _TAPES.clear()
    _KERNELS.clear()
    _HITS["tape"] = 0
    _HITS["kernel"] = 0
    _MISSES["tape"] = 0
    _MISSES["kernel"] = 0
    _EVICTIONS["tape"] = 0
    _EVICTIONS["kernel"] = 0
