"""Pluggable compiled-kernel backends for system evaluation.

Every path tracker in this codebase bottoms out in "evaluate the
residual and Jacobian of a polynomial system for a batch of points".
This package makes that hot path pluggable:

- the ``"naive"`` backend is the seed implementation — shared monomial
  power-tables plus ``np.add.at`` scatter — wrapped with effort
  accounting (arithmetic bit-identical to the default path);
- the ``"slp"`` backend *tapes* the system once into a straight-line
  program with common-subexpression sharing, derives the Jacobian tape
  by forward-mode AD over the SLP, and replays both fused per batch as
  generated-and-``exec``'d numpy source (:mod:`repro.kernels.slp`),
  behind a small array-API seam (:mod:`repro.kernels.array_api`) that
  leaves the door open to GPU arrays.

Tapes and bound kernels are memoized by structure fingerprint plus
coefficient hash (:mod:`repro.kernels.cache`), so repeated solves of
the same family — the sweep engine's common case — pay taping cost
once.  Backend selection is threaded through the homotopy layer as a
``kernel=`` option on :func:`repro.homotopy.solve`, on
:class:`~repro.homotopy.convex.ConvexHomotopy`, and on the polyhedral
:class:`~repro.polyhedral.CellHomotopy`.

All generated code is elementwise along the point axis, so scalar
(one-row) and batched evaluation are bit-identical — the invariant the
scalar/batch parity suites pin.

>>> import numpy as np
>>> from repro.systems import katsura_system
>>> system = katsura_system(2)
>>> kernel = compile_system_kernel(system, "slp")
>>> X = np.array([[0.3 + 0.1j, -0.2j, 0.5 + 0j],
...               [1.0 + 0j, 0.25j, -0.75 + 0j]])
>>> res, jac = kernel.evaluate_and_jacobian(X)
>>> res_naive, jac_naive = system.evaluate_and_jacobian_many(X)
>>> bool(np.allclose(res, res_naive) and np.allclose(jac, jac_naive))
True

One row of a batch is bit-identical to the one-row batch (the
scalar/batch parity invariant):

>>> row = kernel.evaluate_and_jacobian(X[1:2])[0][0]
>>> bool(np.array_equal(row, res[1]))
True

Kernels are memoized by structure + coefficients, so compiling the
same system again is free:

>>> compile_system_kernel(system, "slp") is kernel
True
>>> kernel.stats.tape_ops > 0
True
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

import numpy as np

from .array_api import (
    ArrayBackend,
    NUMPY_BACKEND,
    get_array_backend,
    register_array_backend,
)
from .cache import (
    CAPACITY_ENV,
    cached_slp_kernel,
    cached_tape,
    clear_kernel_cache,
    coefficient_fingerprint,
    kernel_cache_info,
    set_kernel_cache_capacity,
    structure_fingerprint,
)
from .slp import KernelStats, SLPKernel, SLPTape, Term, build_tape

__all__ = [
    "KERNEL_BACKENDS",
    "ArrayBackend",
    "KernelStats",
    "KernelUsage",
    "NaiveSystemKernel",
    "SLPKernel",
    "SLPTape",
    "Term",
    "build_tape",
    "clear_kernel_cache",
    "compile_system_kernel",
    "compile_term_kernel",
    "get_array_backend",
    "kernel_cache_info",
    "normalize_kernel",
    "set_kernel_cache_capacity",
    "CAPACITY_ENV",
    "register_array_backend",
    "system_terms",
]

#: Backends accepted wherever a ``kernel=`` option is threaded through.
KERNEL_BACKENDS = ("naive", "slp")


def normalize_kernel(kernel: Optional[str]) -> Optional[str]:
    """Validate a ``kernel=`` option; ``None`` means the uninstrumented
    default path (same arithmetic as ``"naive"``, no accounting)."""
    if kernel is None:
        return None
    if kernel not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {kernel!r}; "
            f"expected one of {sorted(KERNEL_BACKENDS)} or None"
        )
    return kernel


def system_terms(system) -> List[Term]:
    """The ordered term list of a :class:`~repro.polynomials.
    PolynomialSystem` (``eta = 0`` throughout)."""
    terms: List[Term] = []
    for i, poly in enumerate(system):
        for expo, c in poly.terms():
            terms.append(Term(row=i, expo=tuple(expo), coeff=complex(c)))
    return terms


class NaiveSystemKernel:
    """The seed power-table + scatter evaluator, with effort accounting.

    Delegates to the system's own compiled tables, so results are
    bit-identical to calling the system directly; this wrapper exists
    to give the default path the same stats surface as the SLP backend
    (and to anchor benchmark comparisons).
    """

    backend = "naive"

    def __init__(self, system) -> None:
        self.system = system
        t0 = time.perf_counter()
        tables = system._compiled()
        taping = time.perf_counter() - t0
        self.stats = KernelStats(
            backend=self.backend,
            tape_ops=len(tables.res_rows) + len(tables.jac_rows),
            n_terms=len(tables.res_rows),
            taping_seconds=taping,
            cache_hit=taping == 0.0,
        )

    def evaluate(self, X: np.ndarray, tt=None) -> np.ndarray:
        self.stats.record(X.shape[0])
        return self.system._tables_evaluate_many(X)

    def evaluate_and_jacobian(self, X: np.ndarray, tt=None):
        self.stats.record(X.shape[0])
        return self.system._tables_evaluate_and_jacobian_many(X)

    def __repr__(self) -> str:
        return f"NaiveSystemKernel(ops={self.stats.tape_ops})"


def compile_system_kernel(system, backend: str = "slp"):
    """Compile a :class:`~repro.polynomials.PolynomialSystem` for a
    backend; SLP kernels are memoized by structure + coefficients."""
    backend = normalize_kernel(backend)
    if backend is None or backend == "naive":
        return NaiveSystemKernel(system)
    return cached_slp_kernel(
        system.neqs, system.nvars, system_terms(system), has_t=False
    )


def compile_term_kernel(
    neqs: int, nvars: int, terms: Iterable[Term], backend: str = "slp"
) -> SLPKernel:
    """Compile a parametric term list ``c * t^eta * x^a`` (the
    polyhedral :class:`~repro.polyhedral.CellHomotopy` shape) into an
    SLP kernel with t-derivative programs."""
    backend = normalize_kernel(backend)
    if backend != "slp":
        raise ValueError(
            "parametric term kernels only support the 'slp' backend"
        )
    return cached_slp_kernel(neqs, nvars, list(terms), has_t=True)


class KernelUsage:
    """Delta accounting over a set of (possibly shared) kernels.

    Memoized kernels carry cumulative counters; a solve wants to report
    only its own share.  Snapshot at construction, then
    :meth:`report` yields the per-run backend summary —
    ``backend`` / ``tape_ops`` / ``taping_seconds`` / ``calls`` /
    ``evaluations`` — with duplicate kernel objects counted once.
    """

    def __init__(self, kernels: Iterable) -> None:
        seen = {}
        for k in kernels:
            if k is not None and id(k) not in seen:
                seen[id(k)] = k
        self.kernels = list(seen.values())
        self._base = [
            (k.stats.calls, k.stats.evaluations) for k in self.kernels
        ]

    def add(self, kernels: Iterable) -> None:
        known = {id(k) for k in self.kernels}
        for k in kernels:
            if k is not None and id(k) not in known:
                known.add(id(k))
                self.kernels.append(k)
                self._base.append((k.stats.calls, k.stats.evaluations))

    def merge(self, other: "KernelUsage") -> None:
        """Adopt another usage's kernels *with their baselines* (the
        earlier snapshot wins for kernels tracked by both)."""
        known = {id(k): i for i, k in enumerate(self.kernels)}
        for k, base in zip(other.kernels, other._base):
            i = known.get(id(k))
            if i is None:
                self.kernels.append(k)
                self._base.append(base)
            else:
                self._base[i] = min(self._base[i], base)

    def report(self) -> Optional[dict]:
        if not self.kernels:
            return None
        calls = evaluations = 0
        for k, (c0, e0) in zip(self.kernels, self._base):
            calls += k.stats.calls - c0
            evaluations += k.stats.evaluations - e0
        return {
            "backend": self.kernels[0].backend,
            "kernels": len(self.kernels),
            "tape_ops": int(sum(k.stats.tape_ops for k in self.kernels)),
            "taping_seconds": float(
                sum(k.stats.taping_seconds for k in self.kernels)
            ),
            "calls": int(calls),
            "evaluations": int(evaluations),
        }
