"""Straight-line-program taping with forward-mode AD Jacobians.

This module is the heart of the compiled kernel backend.  A *tape* is
built once per system structure, in three passes:

1. **Taping with hash-consing.**  Every monomial ``x^a`` (and, for
   parametric homotopies, every time power ``t^eta``) is decomposed into
   a chain of binary multiplications.  Each multiplication is *interned*
   — ``(mul, a, b)`` with commutatively sorted operands maps to exactly
   one tape node — so shared monomial prefixes and repeated power
   products across all equations collapse into common subexpressions
   automatically.

2. **Forward-mode AD over the tape.**  The derivative of every tape
   node with respect to each input variable is propagated through the
   product rule ``d(u*v) = du*v + u*dv`` as a sparse *linear
   combination* of tape nodes.  Because the product nodes created by
   the AD pass are interned against the same table, derivative
   subexpressions are shared with the primal tape (``d(x^k)/dx``
   collapses to ``k * x^(k-1)``, reusing the power chain), which is how
   the Jacobian tape comes out with no redundant work — the CppAD
   idiom, specialized to polynomial straight-line programs.

3. **Code generation.**  Each requested program ("eval", "eval_jac",
   "jac_t", "jac_both") is emitted as numpy source operating
   elementwise along the leading *point* axis and compiled with
   :func:`compile`/``exec``.  All arithmetic is elementwise in the
   point axis — no reductions whose association depends on the batch
   shape — so evaluating one row of a batch is bit-identical to
   evaluating that row alone.  That property is what lets the scalar
   tracker paths route through the same compiled kernels as the batch
   fronts without perturbing a single decision.

Coefficients are *not* baked into the generated source: the source
depends only on the system's structure (supports and t-exponents), and
each term's coefficient is looked up in a constant table bound at
kernel-bind time.  Two systems from the same family — the sweep
engine's common case — therefore share one compiled code object and
differ only in their constant tables (see :mod:`repro.kernels.cache`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .array_api import ArrayBackend, get_array_backend

__all__ = ["Term", "SLPTape", "SLPKernel", "KernelStats", "build_tape"]


@dataclass(frozen=True)
class Term:
    """One term ``coeff * t^eta * x^expo`` of equation ``row``.

    ``eta == 0`` makes the term a plain polynomial term (the
    :class:`~repro.polynomials.PolynomialSystem` case); cell homotopies
    carry the lifted slack as a positive float ``eta``.
    """

    row: int
    expo: Tuple[int, ...]
    coeff: complex
    eta: float = 0.0


@dataclass
class KernelStats:
    """Effort accounting for one compiled kernel.

    ``tape_ops`` counts the straight-line operations of the fused
    evaluate+Jacobian program (shared-subexpression multiplies plus
    term accumulations); ``evaluations`` counts *points* evaluated (the
    sum of batch sizes over all calls), ``calls`` the number of kernel
    invocations.  ``taping_seconds`` is zero when the tape came out of
    the structure cache.
    """

    backend: str
    tape_ops: int = 0
    n_terms: int = 0
    taping_seconds: float = 0.0
    cache_hit: bool = False
    calls: int = 0
    evaluations: int = 0

    def record(self, npts: int) -> None:
        self.calls += 1
        self.evaluations += int(npts)

    def snapshot(self) -> dict:
        return {
            "backend": self.backend,
            "tape_ops": self.tape_ops,
            "n_terms": self.n_terms,
            "taping_seconds": self.taping_seconds,
            "cache_hit": self.cache_hit,
            "calls": self.calls,
            "evaluations": self.evaluations,
        }


# ----------------------------------------------------------------------
# tape construction
# ----------------------------------------------------------------------

_LinComb = Dict[Optional[int], float]  # node id (None == constant 1) -> scale


class _TapeBuilder:
    """Hash-consed straight-line program builder with forward-mode AD."""

    def __init__(self) -> None:
        self.ops: List[tuple] = []
        self._intern: Dict[tuple, int] = {}
        self._deriv: Dict[int, Dict[int, _LinComb]] = {}

    def _node(self, key: tuple) -> int:
        idx = self._intern.get(key)
        if idx is None:
            idx = len(self.ops)
            self.ops.append(key)
            self._intern[key] = idx
        return idx

    def var(self, v: int) -> int:
        return self._node(("var", int(v)))

    def tpow(self, e: float) -> Optional[int]:
        e = float(e)
        if e == 0.0:
            return None
        return self._node(("tpow", e))

    def mul(self, a: Optional[int], b: Optional[int]) -> Optional[int]:
        if a is None:
            return b
        if b is None:
            return a
        if a > b:
            a, b = b, a  # commutative: canonical operand order
        return self._node(("mul", a, b))

    def monomial(self, expo: Sequence[int]) -> Optional[int]:
        node: Optional[int] = None
        for v, e in enumerate(expo):
            for _ in range(int(e)):
                node = self.mul(node, self.var(v))
        return node

    def deriv(self, node: Optional[int]) -> Dict[int, _LinComb]:
        """Forward-mode derivative of a node w.r.t. every variable.

        Returns ``{var: {node_or_None: scale}}`` — each entry a sparse
        linear combination of (interned) tape nodes.  Time powers have
        zero x-derivative, variables derivative one, and products
        propagate through ``d(u*v) = du*v + u*dv`` with every created
        product interned, so shared structure collapses (e.g. the two
        product-rule branches of ``x * x^(k-1)`` merge into one
        ``k * x^(k-1)`` entry).
        """
        if node is None:
            return {}
        memo = self._deriv.get(node)
        if memo is not None:
            return memo
        op = self.ops[node]
        if op[0] == "var":
            out: Dict[int, _LinComb] = {op[1]: {None: 1.0}}
        elif op[0] == "tpow":
            out = {}
        else:
            _, a, b = op
            out = {}
            for other, branch in ((b, self.deriv(a)), (a, self.deriv(b))):
                for v, lin in branch.items():
                    acc = out.setdefault(v, {})
                    for n, s in lin.items():
                        m = self.mul(n, other)
                        acc[m] = acc.get(m, 0.0) + s
        self._deriv[node] = out
        return out


#: one accumulation entry: (term index into the coefficient vector,
#: structural scale factor, tape node or None for the constant 1)
_Entry = Tuple[int, float, Optional[int]]


@dataclass
class _Program:
    """One generated function: source, code object, constant spec."""

    name: str
    source: str
    code: object
    const_spec: List[Tuple[int, float]]
    n_ops: int


@dataclass
class SLPTape:
    """The structure-only tape: ops, per-output term lists, programs.

    A tape is shared by every system with the same structure; binding
    concrete coefficients happens in :class:`SLPKernel`.
    """

    neqs: int
    nvars: int
    has_t: bool
    ops: List[tuple]
    res_terms: List[List[_Entry]]
    jac_terms: Dict[Tuple[int, int], List[_Entry]]
    dt_terms: List[List[_Entry]]
    n_terms: int
    build_seconds: float
    _programs: Dict[str, _Program] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def program(self, name: str) -> _Program:
        prog = self._programs.get(name)
        if prog is None:
            prog = self._generate(name)
            self._programs[name] = prog
        return prog

    @property
    def tape_ops(self) -> int:
        """Operation count of the fused eval+Jacobian program."""
        return self.program("eval_jac").n_ops

    # ------------------------------------------------------------------
    def _live_nodes(self, groups: Sequence[List[_Entry]]) -> List[int]:
        live: set = set()
        stack: List[int] = []
        for entries in groups:
            for _, _, node in entries:
                if node is not None and node not in live:
                    live.add(node)
                    stack.append(node)
        while stack:
            op = self.ops[stack.pop()]
            if op[0] == "mul":
                for arg in op[1:]:
                    if arg not in live:
                        live.add(arg)
                        stack.append(arg)
        return sorted(live)  # creation order is topological

    def _generate(self, name: str) -> _Program:
        want_res = name in ("eval", "eval_jac")
        want_jac = name in ("eval_jac", "jac_both")
        want_dt = name in ("jac_t", "jac_both")
        if not (want_res or want_jac or want_dt):
            raise ValueError(f"unknown SLP program {name!r}")
        groups: List[List[_Entry]] = []
        if want_res:
            groups.extend(self.res_terms)
        if want_jac:
            groups.extend(self.jac_terms.values())
        if want_dt:
            groups.extend(self.dt_terms)
        live = self._live_nodes(groups)
        const_spec: List[Tuple[int, float]] = []
        fname = f"_slp_{name}"
        lines = [f"def {fname}(X, T, K, xp):", "    npts = X.shape[0]"]
        for nid in live:
            op = self.ops[nid]
            if op[0] == "var":
                lines.append(f"    n{nid} = X[:, {op[1]}]")
            elif op[0] == "tpow":
                if op[1] == 1.0:
                    lines.append(f"    n{nid} = T")
                else:
                    lines.append(f"    n{nid} = T ** {op[1]!r}")
            else:
                lines.append(f"    n{nid} = n{op[1]} * n{op[2]}")

        def emit_sum(entries: List[_Entry], target: str) -> None:
            if not entries:
                return
            for j, (k, scale, node) in enumerate(entries):
                ki = len(const_spec)
                const_spec.append((k, scale))
                if j == 0:
                    if node is None:
                        lines.append(
                            f"    acc = xp.full(npts, K[{ki}], dtype=X.dtype)"
                        )
                    else:
                        lines.append(f"    acc = K[{ki}] * n{node}")
                elif node is None:
                    lines.append(f"    acc += K[{ki}]")
                else:
                    lines.append(f"    acc += K[{ki}] * n{node}")
            lines.append(f"    {target} = acc")

        rets = []
        if want_res:
            lines.append(
                f"    res = xp.empty((npts, {self.neqs}), dtype=X.dtype)"
            )
            for i, entries in enumerate(self.res_terms):
                if entries:
                    emit_sum(entries, f"res[:, {i}]")
                else:
                    lines.append(f"    res[:, {i}] = 0.0")
            rets.append("res")
        if want_jac:
            lines.append(
                f"    jac = xp.zeros((npts, {self.neqs}, {self.nvars}),"
                " dtype=X.dtype)"
            )
            for (i, v), entries in sorted(self.jac_terms.items()):
                emit_sum(entries, f"jac[:, {i}, {v}]")
            rets.append("jac")
        if want_dt:
            lines.append(
                f"    dt = xp.zeros((npts, {self.neqs}), dtype=X.dtype)"
            )
            for i, entries in enumerate(self.dt_terms):
                emit_sum(entries, f"dt[:, {i}]")
            rets.append("dt")
        lines.append("    return " + ", ".join(rets))
        source = "\n".join(lines) + "\n"
        namespace: dict = {}
        exec(compile(source, f"<slp:{name}>", "exec"), namespace)
        return _Program(
            name=name,
            source=source,
            code=namespace[fname],
            const_spec=const_spec,
            n_ops=len(live) + len(const_spec),
        )


def build_tape(
    neqs: int, nvars: int, terms: Sequence[Term], has_t: bool = False
) -> SLPTape:
    """Tape a term list into a shared-subexpression SLP with AD Jacobians."""
    t0 = time.perf_counter()
    builder = _TapeBuilder()
    res_terms: List[List[_Entry]] = [[] for _ in range(neqs)]
    jac_terms: Dict[Tuple[int, int], List[_Entry]] = {}
    dt_terms: List[List[_Entry]] = [[] for _ in range(neqs)]
    for k, term in enumerate(terms):
        mono = builder.monomial(term.expo)
        tnode = builder.tpow(term.eta) if has_t else None
        value = builder.mul(tnode, mono)
        res_terms[term.row].append((k, 1.0, value))
        for v, lin in builder.deriv(mono).items():
            entries = jac_terms.setdefault((term.row, v), [])
            for n, s in lin.items():
                entries.append((k, s, builder.mul(tnode, n)))
        if has_t and term.eta > 0.0:
            td = builder.tpow(term.eta - 1.0)
            dt_terms[term.row].append(
                (k, term.eta, builder.mul(td, mono))
            )
    return SLPTape(
        neqs=neqs,
        nvars=nvars,
        has_t=has_t,
        ops=builder.ops,
        res_terms=res_terms,
        jac_terms=jac_terms,
        dt_terms=dt_terms,
        n_terms=len(terms),
        build_seconds=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# bound kernels
# ----------------------------------------------------------------------


class SLPKernel:
    """A tape bound to concrete coefficients and an array backend.

    All methods take ``X`` of shape ``(npts, nvars)`` (complex) and, for
    parametric tapes, the per-point time vector ``tt``.  Arithmetic is
    elementwise along the point axis, so row ``i`` of any batched call
    is bit-identical to the same call on the one-row batch ``X[i:i+1]``.
    """

    backend = "slp"

    def __init__(
        self,
        tape: SLPTape,
        coefficients: Sequence[complex],
        array_backend: ArrayBackend | str | None = None,
        taping_seconds: float = 0.0,
        cache_hit: bool = False,
    ) -> None:
        if len(coefficients) != tape.n_terms:
            raise ValueError(
                f"tape has {tape.n_terms} terms, got "
                f"{len(coefficients)} coefficients"
            )
        self.tape = tape
        self.coefficients = np.asarray(coefficients, dtype=complex)
        self.array_backend = get_array_backend(array_backend)
        self._bound: Dict[str, tuple] = {}
        self.stats = KernelStats(
            backend=self.backend,
            tape_ops=tape.tape_ops,
            n_terms=tape.n_terms,
            taping_seconds=taping_seconds,
            cache_hit=cache_hit,
        )

    def _prog(self, name: str):
        bound = self._bound.get(name)
        if bound is None:
            prog = self.tape.program(name)
            consts = tuple(
                complex(self.coefficients[k] * scale)
                for k, scale in prog.const_spec
            )
            bound = (prog.code, consts)
            self._bound[name] = bound
        return bound

    def _run(self, name: str, X: np.ndarray, tt):
        fn, consts = self._prog(name)
        self.stats.record(X.shape[0])
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            return fn(X, tt, consts, self.array_backend.xp)

    # ------------------------------------------------------------------
    def evaluate(self, X: np.ndarray, tt=None) -> np.ndarray:
        """Residuals, shape ``(npts, neqs)``."""
        return self._run("eval", X, tt)

    def evaluate_and_jacobian(self, X: np.ndarray, tt=None):
        """Residuals and x-Jacobians, shapes ``(npts, neqs)`` and
        ``(npts, neqs, nvars)``, fused over one shared tape replay."""
        return self._run("eval_jac", X, tt)

    def jacobian_t(self, X: np.ndarray, tt) -> np.ndarray:
        """t-derivatives, shape ``(npts, neqs)`` (parametric tapes)."""
        return self._run("jac_t", X, tt)

    def jacobians(self, X: np.ndarray, tt):
        """x-Jacobians and t-derivatives from one fused replay."""
        return self._run("jac_both", X, tt)

    def __repr__(self) -> str:
        return (
            f"SLPKernel(neqs={self.tape.neqs}, nvars={self.tape.nvars}, "
            f"ops={self.stats.tape_ops})"
        )
