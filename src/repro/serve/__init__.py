"""``repro.serve`` — the long-running, batching solve service.

The paper's offline/online split, served: ``python -m repro.serve``
binds a TCP endpoint, accepts concurrent JSONL queries (the fleet's
framing), groups same-structure queries arriving within one batching
window, and tracks each Pieri group as **one** stacked
structure-of-arrays front warm-started from the artifact cache
(:mod:`repro.artifacts`).  The first query of a structure pays the
ab-initio solve and populates the store; every later query — from any
client, any process, any day — costs ``d(m, p, q)`` continuation
paths.

>>> SERVE_MESSAGE_TYPES[:2]
('query', 'result')
>>> q = {"type": "query", "kind": "pieri", "m": 2, "p": 2, "q": 0,
...      "seed": 7}
>>> encode_serve_frame(q).endswith(b"\\n")
True
>>> import numpy as np
>>> a = np.array([[1 + 2j, 3.5]])
>>> bool(np.array_equal(complex_from_json(complex_to_json(a)), a))
True

See ``docs/serve.md`` for the tutorial (cold round vs warm round) and
``python -m repro.serve --demo`` for a self-contained smoke run.
"""

from .service import (
    SERVE_MESSAGE_TYPES,
    SolveService,
    complex_from_json,
    complex_to_json,
    decode_serve_line,
    encode_serve_frame,
    request_many,
)

__all__ = [
    "SERVE_MESSAGE_TYPES",
    "SolveService",
    "encode_serve_frame",
    "decode_serve_line",
    "complex_to_json",
    "complex_from_json",
    "request_many",
]
