"""The batching solve service: concurrent queries, stacked fronts.

An asyncio TCP front-end over the artifact cache (:mod:`repro.artifacts`)
speaking the fleet's wire format — newline-delimited JSON frames, one
message per line, torn lines skipped at the next parse boundary
(:mod:`repro.parallel.fleet.messages`).  Queries that arrive within one
*batching window* are grouped by structure fingerprint; each Pieri group
is tracked as **one** :class:`~repro.tracker.stacked.StackedHomotopy`
front (the fused :class:`~repro.schubert.parameter.PieriParameterStack`,
``B x d(m, p, q)`` paths in a single structure-of-arrays sweep), so B
concurrent clients share every vectorized tracker dispatch.

The cache-or-solve contract matches the library entry points it wraps:

- a *warm* group continues the stored solved generic instance to every
  query in the group — ``d(m, p, q)`` paths per query, no tree;
- a *cold* group solves its first query ab initio (populating the store
  through ``PieriSolver.solve(cache=...)``), then continues that fresh
  solution to the rest of the group in one stack;
- any query whose continuation drops a path falls back to its own
  ab-initio solve — the cache steers the route, never the answer.

Polynomial-system queries route through
:func:`repro.homotopy.solve` with the shared store (coefficient-
parameter continuation on warm support structures).

Counters land on the ambient :class:`~repro.telemetry.Telemetry`
(``serve.query`` / ``serve.group`` / ``serve.stack_paths`` /
``serve.fallback``) and on :attr:`SolveService.stats`; per-group records
accumulate in :attr:`SolveService.group_log` so tests and the ``--demo``
smoke can assert "N concurrent same-shape queries became one front".
"""

from __future__ import annotations

import asyncio
import contextvars
import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..artifacts import (
    ArtifactStore,
    load_pieri_generic,
    pieri_fingerprint,
    resolve_store,
)
from ..telemetry import current_telemetry
from ..tracker import TrackerOptions

__all__ = [
    "SERVE_MESSAGE_TYPES",
    "SolveService",
    "encode_serve_frame",
    "decode_serve_line",
    "complex_to_json",
    "complex_from_json",
    "request_many",
]

#: Frame vocabulary (the fleet idiom with a serve-specific alphabet).
SERVE_MESSAGE_TYPES = ("query", "result", "error", "stats", "stats_reply")


def encode_serve_frame(message: dict) -> bytes:
    """One message -> one newline-terminated JSON line (UTF-8 bytes)."""
    if message.get("type") not in SERVE_MESSAGE_TYPES:
        raise ValueError(f"unknown serve message type {message.get('type')!r}")
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_serve_line(line: bytes) -> Optional[dict]:
    """Tolerant decode: ``None`` for blank, torn, or foreign lines."""
    line = line.strip()
    if not line:
        return None
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(message, dict):
        return None
    if message.get("type") not in SERVE_MESSAGE_TYPES:
        return None
    return message


def complex_to_json(array) -> dict:
    """A complex ndarray as a JSON-able ``{shape, re, im}`` triple."""
    array = np.asarray(array, dtype=complex)
    return {
        "shape": list(array.shape),
        "re": array.real.ravel().tolist(),
        "im": array.imag.ravel().tolist(),
    }


def complex_from_json(payload: dict) -> np.ndarray:
    """Inverse of :func:`complex_to_json`."""
    shape = tuple(int(s) for s in payload["shape"])
    re = np.asarray(payload["re"], dtype=float)
    im = np.asarray(payload["im"], dtype=float)
    return (re + 1j * im).reshape(shape)


def _pieri_instance_from_query(query: dict):
    """Materialize the query's :class:`~repro.schubert.PieriInstance`.

    Either explicit data (``planes`` + ``points`` complex payloads) or a
    ``seed`` for a reproducible general-position instance.
    """
    from ..schubert import PieriInstance, PieriProblem

    m, p, q = int(query["m"]), int(query["p"]), int(query.get("q", 0))
    if "planes" in query:
        planes = [complex_from_json(k) for k in query["planes"]]
        points = [complex(c[0], c[1]) for c in query["points"]]
        return PieriInstance(PieriProblem(m, p, q), planes, points)
    seed = int(query.get("seed", 0))
    return PieriInstance.random(m, p, q, np.random.default_rng(seed))


def _build_named_system(query: dict):
    from ..sweep.engine import _build_system

    kind = query["system"]
    rng = np.random.default_rng(int(query.get("seed", 0)))
    return _build_system(kind, {"n": int(query["n"])}, rng)


class SolveService:
    """Long-running solve front: group, stack, continue, reply.

    Parameters
    ----------
    store:
        Anything :func:`repro.artifacts.resolve_store` accepts; ``True``
        (default) means the ``$REPRO_ARTIFACT_STORE`` store.  ``None``
        disables caching — every query solves ab initio, ungrouped
        continuation-wise but still batched per window.
    batch_window:
        Seconds the batcher waits after the first query of a round so
        concurrent clients land in the same group.
    seed:
        Base seed for the service's continuation rng streams.
    """

    def __init__(
        self,
        store=True,
        batch_window: float = 0.05,
        options: TrackerOptions | None = None,
        seed: int = 0,
    ) -> None:
        self.store: Optional[ArtifactStore] = resolve_store(store)
        self.batch_window = float(batch_window)
        self.options = options
        self.seed = int(seed)
        self.stats = {
            "queries": 0,
            "groups": 0,
            "grouped_queries": 0,
            "warm_queries": 0,
            "cold_queries": 0,
            "fallbacks": 0,
            "errors": 0,
        }
        #: one record per processed group: key, size, route, stack paths
        self.group_log: List[dict] = []
        self._pending: List[tuple] = []  # (query, future)
        self._wake: Optional[asyncio.Event] = None
        self._batcher: Optional[asyncio.Task] = None
        self._rounds = 0

    # ------------------------------------------------------------- wire
    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and serve; returns the ``asyncio.Server`` (port via
        ``server.sockets[0].getsockname()[1]``)."""
        self._wake = asyncio.Event()
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )
        return await asyncio.start_server(self._client_loop, host, port)

    async def aclose(self) -> None:
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None

    async def _client_loop(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = decode_serve_line(line)
                if message is None:
                    continue
                if message["type"] == "stats":
                    reply = {
                        "type": "stats_reply",
                        "stats": dict(self.stats),
                        "groups": list(self.group_log),
                    }
                    writer.write(encode_serve_frame(reply))
                    await writer.drain()
                    continue
                if message["type"] != "query":
                    continue
                future = asyncio.get_running_loop().create_future()
                self._pending.append((message, future))
                self.stats["queries"] += 1
                tel = current_telemetry()
                if tel is not None:
                    tel.count("serve.query")
                self._wake.set()
                response = await future
                writer.write(encode_serve_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _batch_loop(self) -> None:
        while True:
            await self._wake.wait()
            # the window: let concurrent clients join this round
            await asyncio.sleep(self.batch_window)
            self._wake.clear()
            batch, self._pending = self._pending, []
            if not batch:
                continue
            self._rounds += 1
            groups = self._group(batch)
            for key, items in groups:
                queries = [q for q, _ in items]
                futures = [f for _, f in items]
                # run_in_executor does not propagate contextvars to the
                # worker thread — copy so the ambient Telemetry is seen
                ctx = contextvars.copy_context()
                responses = await asyncio.get_running_loop().run_in_executor(
                    None, ctx.run, self._solve_group, key, queries
                )
                for future, response in zip(futures, responses):
                    if not future.done():
                        future.set_result(response)

    # ---------------------------------------------------------- routing
    def _group(self, batch: Sequence[tuple]) -> List[tuple]:
        """Partition one round's queries by structure fingerprint."""
        groups: Dict[str, List[tuple]] = {}
        order: List[str] = []
        for query, future in batch:
            try:
                kind = query.get("kind")
                if kind == "pieri":
                    key = pieri_fingerprint(
                        int(query["m"]), int(query["p"]),
                        int(query.get("q", 0)),
                    )
                elif kind == "system":
                    key = f"system-{query['system']}-{int(query['n'])}"
                else:
                    key = "malformed"
            except (KeyError, TypeError, ValueError):
                key = "malformed"
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((query, future))
        return [(key, groups[key]) for key in order]

    def _solve_group(self, key: str, queries: List[dict]) -> List[dict]:
        tel = current_telemetry()
        self.stats["groups"] += 1
        self.stats["grouped_queries"] += len(queries)
        if tel is not None:
            tel.count("serve.group")
        if key == "malformed":
            self.stats["errors"] += len(queries)
            return [
                {
                    "type": "error",
                    "id": q.get("id"),
                    "error": "malformed query: need kind='pieri' "
                    "(m, p, q[, seed|planes+points]) or kind='system' "
                    "(system, n)",
                }
                for q in queries
            ]
        try:
            if queries[0]["kind"] == "pieri":
                return self._solve_pieri_group(key, queries)
            return self._solve_system_group(key, queries)
        except Exception as exc:  # noqa: BLE001 - the service must answer
            self.stats["errors"] += len(queries)
            return [
                {"type": "error", "id": q.get("id"), "error": repr(exc)}
                for q in queries
            ]

    # ------------------------------------------------------------ pieri
    def _solve_pieri_group(self, key: str, queries: List[dict]) -> List[dict]:
        from ..schubert import (
            PieriSolver,
            continue_to_instances,
            pieri_root_count,
        )

        tel = current_telemetry()
        instances = [_pieri_instance_from_query(q) for q in queries]
        problem = instances[0].problem
        d = pieri_root_count(problem.m, problem.p, problem.q)
        responses: List[Optional[dict]] = [None] * len(queries)

        generic = generic_solutions = None
        if self.store is not None:
            loaded = load_pieri_generic(
                self.store, problem.m, problem.p, problem.q
            )
            if loaded is not None:
                generic, generic_solutions, _ = loaded
        route = "warm"
        continued = list(range(len(queries)))
        if generic is None:
            # cold group: the first query pays the ab-initio tree (and
            # populates the store); its fresh solution set is the
            # generic instance the rest of the group continues from
            route = "cold"
            report = PieriSolver(instances[0], seed=self.seed).solve(
                mode="batch", cache=self.store
            )
            responses[0] = self._pieri_response(
                queries[0], report.solutions, report.cache
            )
            self.stats["cold_queries"] += 1
            if report.failures or not report.solutions:
                # give every remaining query its own ab-initio solve
                # rather than continuing from an incomplete root set
                for k in range(1, len(queries)):
                    responses[k] = self._pieri_fallback(queries[k], instances[k])
                self._log_group(key, len(queries), 0, "cold")
                return responses
            generic, generic_solutions = instances[0], report.solutions
            continued = list(range(1, len(queries)))

        stack_paths = 0
        if continued:
            rng = np.random.default_rng(
                [self.seed, self._rounds, len(self.group_log)]
            )
            targets = [instances[k] for k in continued]
            stack_paths = len(targets) * d
            if tel is not None:
                tel.count("serve.stack_paths", stack_paths)
            pairs = continue_to_instances(
                generic, generic_solutions, targets,
                options=self.options, rng=rng,
            )
            for k, (solutions, results) in zip(continued, pairs):
                if len(solutions) == d and all(r.success for r in results):
                    cache_note = {"status": "warm", "key": key, "n_paths": d}
                    responses[k] = self._pieri_response(
                        queries[k], solutions, cache_note
                    )
                    self.stats["warm_queries"] += 1
                else:
                    responses[k] = self._pieri_fallback(queries[k], instances[k])
        self._log_group(key, len(queries), stack_paths, route)
        return responses

    def _pieri_fallback(self, query: dict, instance) -> dict:
        from ..schubert import PieriSolver

        tel = current_telemetry()
        self.stats["fallbacks"] += 1
        self.stats["cold_queries"] += 1
        if tel is not None:
            tel.count("serve.fallback")
        report = PieriSolver(instance, seed=self.seed).solve(mode="batch")
        note = dict(report.cache or {})
        note["fallback"] = True
        return self._pieri_response(query, report.solutions, note)

    def _pieri_response(self, query, solutions, cache_note) -> dict:
        return {
            "type": "result",
            "id": query.get("id"),
            "ok": True,
            "n_solutions": len(solutions),
            "solutions": [complex_to_json(s) for s in solutions],
            "cache": cache_note,
        }

    # ----------------------------------------------------------- system
    def _solve_system_group(self, key: str, queries: List[dict]) -> List[dict]:
        from ..homotopy import solve

        responses = []
        warm = cold = 0
        for query in queries:
            system = _build_named_system(query)
            report = solve(
                system,
                start=query.get("start", "polyhedral"),
                mode="batch",
                rng=np.random.default_rng(
                    [self.seed, int(query.get("seed", 0))]
                ),
                cache=self.store,
            )
            note = report.summary.get("cache")
            if note and note.get("status") == "warm":
                warm += 1
                self.stats["warm_queries"] += 1
            else:
                cold += 1
                self.stats["cold_queries"] += 1
            responses.append(
                {
                    "type": "result",
                    "id": query.get("id"),
                    "ok": True,
                    "n_solutions": len(report.solutions),
                    "solutions": [
                        complex_to_json(s) for s in report.solutions
                    ],
                    "cache": note,
                    "summary": {
                        k: report.summary.get(k)
                        for k in ("success", "mixed_volume", "n_paths")
                        if k in report.summary
                    },
                }
            )
        self._log_group(
            key, len(queries), 0, "warm" if cold == 0 else "cold"
        )
        return responses

    def _log_group(self, key, size, stack_paths, route) -> None:
        self.group_log.append(
            {
                "key": key,
                "size": int(size),
                "stack_paths": int(stack_paths),
                "route": route,
            }
        )


async def _request(host: str, port: int, query: dict) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_serve_frame(query))
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed before replying")
            message = decode_serve_line(line)
            if message is not None:
                return message
    finally:
        writer.close()


async def request_many(host: str, port: int, queries: Sequence[dict]) -> List[dict]:
    """Fire queries concurrently (one connection each); ordered replies.

    This is what makes the batching observable from the outside: all
    queries hit the server inside one window, so same-structure ones
    land in one group and one stacked front.
    """
    return list(
        await asyncio.gather(
            *(_request(host, port, dict(q)) for q in queries)
        )
    )
