"""Command-line front of the batching solve service.

::

    python -m repro.serve --bind HOST:PORT --store DIR   # long-running
    python -m repro.serve --demo [--clients N]           # smoke run

The long-running form binds the endpoint and serves until interrupted;
``--store`` points the artifact cache at a directory (defaults to
``$REPRO_ARTIFACT_STORE``, else a temporary store that lives as long as
the process).  ``--demo`` is self-contained: it starts a service on an
ephemeral port with a temporary store, fires ``--clients`` concurrent
same-shape Pieri queries at it twice — a cold round that populates the
store, then a warm round — and prints the grouping evidence (one group
per round, one stacked front, per-query path counts).  Exit status 0
means every query of both rounds succeeded and the warm round was
served by grouped continuation.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile

from ..artifacts import STORE_ENV
from .service import SolveService, request_many

__all__ = ["main"]


def _parse_endpoint(text: str) -> tuple:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad endpoint {text!r}: expected HOST:PORT")
    return host, int(port)


async def _serve_forever(args) -> int:
    service = SolveService(
        store=args.store, batch_window=args.window, seed=args.seed
    )
    host, port = _parse_endpoint(args.bind)
    server = await service.start(host, port)
    bound = server.sockets[0].getsockname()
    print(f"serve listening on {bound[0]}:{bound[1]} "
          f"(store: {service.store.root if service.store else 'disabled'})",
          flush=True)
    async with server:
        await server.serve_forever()
    return 0


async def _demo(args) -> int:
    service = SolveService(
        store=args.store, batch_window=args.window, seed=args.seed
    )
    server = await service.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    shape = {"type": "query", "kind": "pieri", "m": 2, "p": 2, "q": 0}
    ok = True
    try:
        for label in ("cold", "warm"):
            queries = [
                dict(shape, id=f"{label}-{k}", seed=100 + k)
                for k in range(args.clients)
            ]
            replies = await request_many("127.0.0.1", port, queries)
            n_ok = sum(r.get("ok", False) for r in replies)
            group = service.group_log[-1]
            print(f"{label} round: {n_ok}/{len(queries)} queries ok, "
                  f"group size {group['size']}, route {group['route']}, "
                  f"stacked paths {group['stack_paths']}")
            ok = ok and n_ok == len(queries) and group["size"] == len(queries)
        print(f"stats: {service.stats}")
        # the warm round must have been one grouped continuation front
        ok = ok and service.group_log[-1]["route"] == "warm"
        ok = ok and service.group_log[-1]["stack_paths"] > 0
    finally:
        server.close()
        await server.wait_closed()
        await service.aclose()
    print("demo ok" if ok else "demo FAILED")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Batching solve service over the artifact cache.",
    )
    parser.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="endpoint to listen on (port 0 picks a free port)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="artifact store directory (default: $REPRO_ARTIFACT_STORE, "
        "else a temporary directory)",
    )
    parser.add_argument(
        "--window", type=float, default=0.05, metavar="S",
        help="batching window in seconds (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--demo", action="store_true",
        help="self-contained smoke run: concurrent clients, cold round "
        "then warm round, grouping evidence printed",
    )
    parser.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent queries per demo round (default 4)",
    )
    args = parser.parse_args(argv)
    if args.store is None:
        args.store = os.environ.get(STORE_ENV) or tempfile.mkdtemp(
            prefix="repro-serve-"
        )
    try:
        if args.demo:
            return asyncio.run(_demo(args))
        return asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
