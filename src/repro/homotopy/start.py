"""Start systems with known solutions.

Two classical constructions:

- **total degree** — ``x_i^{d_i} - c_i = 0`` with random nonzero ``c_i``;
  the Bezout number ``prod d_i`` of start solutions is the full product of
  roots of unity (scaled), enumerated lazily.
- **linear product** — each degree-``d`` equation is replaced by a product
  of ``d`` random affine linear forms; start solutions solve one linear
  system per choice of a factor from every equation.  This is the start
  system used for the paper's RPS mechanism benchmark (after [17]), where
  grouping variables gives far fewer paths than total degree; our generic
  variant keeps the same Bezout count but exercises the same code path.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..polynomials import Polynomial, PolynomialSystem, constant, variables

__all__ = [
    "total_degree_start_system",
    "total_degree_start_solutions",
    "LinearProductStart",
    "linear_product_start_system",
]


def total_degree_start_system(
    target: PolynomialSystem, rng: np.random.Generator | None = None
) -> Tuple[PolynomialSystem, List[complex]]:
    """Return the start system ``x_i^{d_i} - c_i`` for ``target``.

    The constants ``c_i`` are random points on the unit circle, so start
    solutions are well scaled.  Returns ``(system, constants)``; enumerate
    the start solutions with :func:`total_degree_start_solutions`.
    """
    if not target.is_square():
        raise ValueError("total-degree start systems need a square target")
    rng = np.random.default_rng() if rng is None else rng
    n = target.nvars
    xs = variables(n)
    degrees = target.degrees()
    if any(d <= 0 for d in degrees):
        raise ValueError("every equation must have positive degree")
    consts = [np.exp(2j * np.pi * rng.random()) for _ in range(n)]
    polys = [xs[i] ** degrees[i] - constant(consts[i], n) for i in range(n)]
    return PolynomialSystem(polys), consts


def total_degree_start_solutions(
    degrees: Sequence[int], constants: Sequence[complex]
) -> Iterator[np.ndarray]:
    """Lazily enumerate all ``prod d_i`` solutions of ``x_i^{d_i} = c_i``."""
    roots_per_var = []
    for d, c in zip(degrees, constants):
        radius = abs(c) ** (1.0 / d)
        phase = np.angle(c)
        # k-th root: radius * exp(i (phase + 2 pi k)/d)
        roots = [radius * np.exp(1j * (phase + 2 * np.pi * k) / d) for k in range(d)]
        roots_per_var.append(roots)
    for combo in itertools.product(*roots_per_var):
        yield np.array(combo, dtype=complex)


class LinearProductStart:
    """A linear-product start system and its start-solution enumerator."""

    def __init__(
        self,
        target: PolynomialSystem,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not target.is_square():
            raise ValueError("linear-product start systems need a square target")
        rng = np.random.default_rng() if rng is None else rng
        self.nvars = n = target.nvars
        self.degrees = target.degrees()
        if any(d <= 0 for d in self.degrees):
            raise ValueError("every equation must have positive degree")
        # factors[i][k] = (a, b): the linear form a . x + b
        self.factors: List[List[Tuple[np.ndarray, complex]]] = []
        for d in self.degrees:
            eq_factors = []
            for _ in range(d):
                a = rng.standard_normal(n) + 1j * rng.standard_normal(n)
                b = complex(rng.standard_normal() + 1j * rng.standard_normal())
                eq_factors.append((a, b))
            self.factors.append(eq_factors)

    def system(self) -> PolynomialSystem:
        """The start system: one product of linear forms per equation."""
        xs = variables(self.nvars)
        polys = []
        for eq_factors in self.factors:
            prod: Polynomial = constant(1, self.nvars)
            for a, b in eq_factors:
                form = constant(b, self.nvars)
                for v, coef in enumerate(a):
                    form = form + complex(coef) * xs[v]
                prod = prod * form
            polys.append(prod)
        return PolynomialSystem(polys)

    def solutions(self) -> Iterator[np.ndarray]:
        """All start solutions: solve one n x n linear system per factor combo."""
        index_ranges = [range(d) for d in self.degrees]
        n = self.nvars
        for combo in itertools.product(*index_ranges):
            amat = np.empty((n, n), dtype=complex)
            bvec = np.empty(n, dtype=complex)
            for i, k in enumerate(combo):
                a, b = self.factors[i][k]
                amat[i] = a
                bvec[i] = -b
            try:
                yield np.linalg.solve(amat, bvec)
            except np.linalg.LinAlgError:  # pragma: no cover - measure zero
                continue

    def solution_count(self) -> int:
        out = 1
        for d in self.degrees:
            out *= d
        return out


def linear_product_start_system(
    target: PolynomialSystem, rng: np.random.Generator | None = None
) -> LinearProductStart:
    """Convenience constructor mirroring :func:`total_degree_start_system`."""
    return LinearProductStart(target, rng)
