"""The convex-combination homotopy with the gamma trick (paper eq. (1)).

    H(x, t) = gamma * (1 - t) * G(x) + t * F(x)

For all but finitely many complex ``gamma`` on the unit circle, every
solution path of ``H`` is regular and bounded for t in [0, 1) — the
probability-one guarantee that makes homotopy continuation reliable.

The class implements both tracker protocols: the scalar
:class:`HomotopyFunction` (one point, one t) and the structure-of-arrays
:class:`BatchHomotopy` (N points, each at its own t), where residuals and
Jacobians of both polynomial systems come from one shared monomial-table
evaluation per batch via
:meth:`~repro.polynomials.PolynomialSystem.evaluate_and_jacobian_many`.
"""

from __future__ import annotations

import cmath

import numpy as np

from ..polynomials import PolynomialSystem
from ..telemetry import active_tracer, maybe_span
from ..tracker import BatchHomotopy, HomotopyFunction
from ..tracker.interface import _per_path_t

__all__ = ["ConvexHomotopy", "random_gamma"]


def random_gamma(rng: np.random.Generator | None = None) -> complex:
    """A uniformly random point on the unit circle (the gamma trick)."""
    rng = np.random.default_rng() if rng is None else rng
    return cmath.exp(2j * cmath.pi * rng.random())


class ConvexHomotopy(HomotopyFunction, BatchHomotopy):
    """H(x,t) = gamma (1-t) G(x) + t F(x) between polynomial systems."""

    def __init__(
        self,
        start: PolynomialSystem,
        target: PolynomialSystem,
        gamma: complex | None = None,
        rng: np.random.Generator | None = None,
        kernel: str | None = None,
    ) -> None:
        if start.nvars != target.nvars or start.neqs != target.neqs:
            raise ValueError("start and target systems must have equal shape")
        if not target.is_square():
            raise ValueError("homotopy continuation needs a square system")
        self.start = start
        self.target = target
        self.gamma = random_gamma(rng) if gamma is None else complex(gamma)
        if self.gamma == 0:
            raise ValueError("gamma must be nonzero")
        self._bind_kernel(kernel)

    def _bind_kernel(self, kernel: str | None) -> None:
        from ..kernels import KernelUsage, compile_system_kernel, normalize_kernel

        self.kernel = normalize_kernel(kernel)
        if self.kernel is None:
            self._kg = self._kf = None
        else:
            self._kg = compile_system_kernel(self.start, self.kernel)
            self._kf = compile_system_kernel(self.target, self.kernel)
        # delta accounting from this moment on: memoized kernels carry
        # cumulative counters from earlier solves in the same process
        self.kernel_usage = KernelUsage(self.kernels)

    @property
    def kernels(self) -> tuple:
        """Bound kernel objects (for stats accounting); may be empty."""
        return tuple(k for k in (self._kg, self._kf) if k is not None)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_kg"] = state["_kf"] = None  # exec'd code doesn't pickle
        state.pop("kernel_usage", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._bind_kernel(self.kernel)

    # ------------------------------------------------------------------
    # backend seam: every evaluation of G and F funnels through these
    # ------------------------------------------------------------------
    def _pair_eval(self, X: np.ndarray):
        with maybe_span(active_tracer(), "evaluate", "kernel"):
            if self._kg is not None:
                return self._kg.evaluate(X), self._kf.evaluate(X)
            return self.start.evaluate_many(X), self.target.evaluate_many(X)

    def _pair_eval_jac(self, X: np.ndarray):
        with maybe_span(active_tracer(), "evaluate_and_jacobian", "kernel"):
            if self._kg is not None:
                g, jg = self._kg.evaluate_and_jacobian(X)
                f, jf = self._kf.evaluate_and_jacobian(X)
            else:
                g, jg = self.start.evaluate_and_jacobian_many(X)
                f, jf = self.target.evaluate_and_jacobian_many(X)
        return g, jg, f, jf

    @property
    def dim(self) -> int:
        return self.target.nvars

    # The scalar methods run through the batched kernels as one-row
    # batches: elementwise batching does not change rounding, so scalar
    # and batched tracking see bit-identical arithmetic — which is what
    # lets BatchTracker reproduce PathTracker's per-path decisions even
    # on knife-edge diverging paths.
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        x = np.asarray(x, dtype=complex)
        _g, jg, _f, jf = self._pair_eval_jac(x[None, :])
        return self.gamma * (1.0 - t) * jg[0] + t * jf[0]

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.jacobian_t_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def evaluate_and_jacobian_x(self, x, t):
        x = np.asarray(x, dtype=complex)
        res, jac = self.evaluate_and_jacobian_batch(x[None, :], t)
        return res[0], jac[0]

    # ------------------------------------------------------------------
    # BatchHomotopy: N paths, each at its own t, in one vectorized call
    # ------------------------------------------------------------------
    def _batch_parts(self, X: np.ndarray, t):
        """Shared per-batch intermediates: (tt, w, g, f, jg, jf).

        Both Jacobian-producing methods assemble their outputs from this
        single evaluation pass, which keeps their arithmetic (and hence
        the scalar/batch parity guarantee) in one place.
        """
        tt = _per_path_t(t, X.shape[0])
        g, jg, f, jf = self._pair_eval_jac(X)
        w = self.gamma * (1.0 - tt)
        return tt, w, g, f, jg, jf

    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        g, f = self._pair_eval(X)
        w = self.gamma * (1.0 - tt)
        return w[:, None] * g + tt[:, None] * f

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(X, t)[1]

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        _per_path_t(t, X.shape[0])  # shape check only; dH/dt is t-free
        g, f = self._pair_eval(X)
        return f - self.gamma * g

    def evaluate_and_jacobian_batch(self, X, t):
        X = np.asarray(X, dtype=complex)
        tt, w, g, f, jg, jf = self._batch_parts(X, t)
        res = w[:, None] * g + tt[:, None] * f
        jac = w[:, None, None] * jg + tt[:, None, None] * jf
        return res, jac

    def jacobians_batch(self, X, t):
        """dH/dx and dH/dt from a single pass over each system."""
        X = np.asarray(X, dtype=complex)
        tt, w, g, f, jg, jf = self._batch_parts(X, t)
        jac_x = w[:, None, None] * jg + tt[:, None, None] * jf
        jac_t = f - self.gamma * g
        return jac_x, jac_t

    # ------------------------------------------------------------------
    # tracker-level rescue hook (see repro.tracker.rescue)
    # ------------------------------------------------------------------
    def rescale_patch(self, x: np.ndarray, t: float):
        """Re-express an escaping path in projective patch coordinates.

        The path of the affine homotopy with coordinates blowing up is,
        in projective space, a perfectly ordinary path heading for the
        hyperplane at infinity.  Lift the current point to ``[x, 1]``,
        normalize it, and choose the patch hyperplane ``c = conj(y0)``
        so that ``c . y0 = |y0|^2 = 1`` exactly: the re-patched start
        is unit-normalized and satisfies the patch equation to machine
        precision.  Returns ``(ProjectivePatchHomotopy, y0)``; the
        homogenized systems are built once and cached.
        """
        if t <= 0.0 or t >= 1.0:
            return None
        x = np.asarray(x, dtype=complex)
        if not np.all(np.isfinite(x)):
            return None
        # imported lazily: projective builds on this module's clients
        from .projective import ProjectivePatchHomotopy, homogenized_pair

        cached = getattr(self, "_homogenized", None)
        if cached is None:
            cached = homogenized_pair(self.start, self.target)
            self._homogenized = cached
        start_h, target_h = cached
        y0 = np.concatenate([x, [1.0 + 0j]])
        y0 = y0 / np.linalg.norm(y0)
        patched = ProjectivePatchHomotopy(
            start_h,
            target_h,
            self.gamma,
            np.conj(y0),
            affine_target=self.target,
            kernel=self.kernel,
        )
        self.kernel_usage.add(patched.kernels)
        return patched, y0

    def __repr__(self) -> str:
        return f"ConvexHomotopy(dim={self.dim}, gamma={self.gamma:.4f})"
