"""The convex-combination homotopy with the gamma trick (paper eq. (1)).

    H(x, t) = gamma * (1 - t) * G(x) + t * F(x)

For all but finitely many complex ``gamma`` on the unit circle, every
solution path of ``H`` is regular and bounded for t in [0, 1) — the
probability-one guarantee that makes homotopy continuation reliable.
"""

from __future__ import annotations

import cmath

import numpy as np

from ..polynomials import PolynomialSystem
from ..tracker import HomotopyFunction

__all__ = ["ConvexHomotopy", "random_gamma"]


def random_gamma(rng: np.random.Generator | None = None) -> complex:
    """A uniformly random point on the unit circle (the gamma trick)."""
    rng = np.random.default_rng() if rng is None else rng
    return cmath.exp(2j * cmath.pi * rng.random())


class ConvexHomotopy(HomotopyFunction):
    """H(x,t) = gamma (1-t) G(x) + t F(x) between polynomial systems."""

    def __init__(
        self,
        start: PolynomialSystem,
        target: PolynomialSystem,
        gamma: complex | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if start.nvars != target.nvars or start.neqs != target.neqs:
            raise ValueError("start and target systems must have equal shape")
        if not target.is_square():
            raise ValueError("homotopy continuation needs a square system")
        self.start = start
        self.target = target
        self.gamma = random_gamma(rng) if gamma is None else complex(gamma)
        if self.gamma == 0:
            raise ValueError("gamma must be nonzero")

    @property
    def dim(self) -> int:
        return self.target.nvars

    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        g = self.start.evaluate(x)
        f = self.target.evaluate(x)
        return self.gamma * (1.0 - t) * g + t * f

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        jg = self.start.jacobian_at(x)
        jf = self.target.jacobian_at(x)
        return self.gamma * (1.0 - t) * jg + t * jf

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.target.evaluate(x) - self.gamma * self.start.evaluate(x)

    def evaluate_and_jacobian_x(self, x, t):
        g, jg = self.start.evaluate_and_jacobian(x)
        f, jf = self.target.evaluate_and_jacobian(x)
        w = self.gamma * (1.0 - t)
        return w * g + t * f, w * jg + t * jf

    def __repr__(self) -> str:
        return f"ConvexHomotopy(dim={self.dim}, gamma={self.gamma:.4f})"
