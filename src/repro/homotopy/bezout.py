"""Multi-homogeneous Bezout numbers (PHCpack's classic root-count tool).

For a partition Z = (Z_1, ..., Z_k) of the variables, the m-homogeneous
Bezout number of a square system is the coefficient of
``prod_j z_j^{|Z_j|}`` in ``prod_i (sum_j d_ij z_j)``, where ``d_ij`` is
the degree of equation i in the block-j variables.  It bounds the number
of isolated finite solutions, often far more sharply than the plain
product of total degrees — and the Pieri root count d(m, p, q) is sharper
still for the pole placement system, which is the paper's point about
"the need for parallel computation" being driven by the true root count.

The coefficient is computed by dynamic programming over the remaining
block capacities.  :func:`best_partition` searches the set partitions
(Bell-number many) with branch-and-bound: the DP carries a per-state
lower bound on the final coefficient — the state's running coefficient
times a product of row minima over the blocks that still have capacity —
and a partition's evaluation aborts the moment that bound reaches the
best count already found.  Block degrees are memoized across partitions
(the same block shows up in many partitions), which together keeps the
root-count report interactive on 8-10 variable systems where the naive
sweep evaluates every one of the ~10^5 partitions in full.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..polynomials import Polynomial, PolynomialSystem

__all__ = [
    "block_degree",
    "multihomogeneous_bezout",
    "set_partitions",
    "best_partition",
]


def block_degree(poly: Polynomial, block: Sequence[int]) -> int:
    """Degree of ``poly`` in the variables of ``block`` jointly."""
    block_set = set(block)
    best = 0
    for expo, _ in poly.terms():
        best = max(best, sum(e for v, e in enumerate(expo) if v in block_set))
    return best


def _bezout_coefficient(
    degrees: Sequence[Sequence[int]],
    sizes: Sequence[int],
    cutoff: int | None = None,
) -> int:
    """Coefficient of ``prod_j z_j^{sizes_j}`` in ``prod_i sum_j d_ij z_j``.

    DP over the remaining block capacities.  With ``cutoff`` set, the DP
    aborts (returning ``cutoff``) as soon as a *lower bound* on the final
    coefficient reaches it: the sum of the states' running coefficients
    times the product, over the unprocessed rows, of each row's minimum
    degree across all blocks.  The bound is valid because every
    completion of every surviving state assigns each remaining row to
    *some* block, picking up a factor of at least that row's minimum —
    and at least one completion exists per state (capacities sum to the
    number of remaining rows).
    """
    nrows = len(degrees)
    if cutoff is not None:
        # suffix[r] = prod over rows >= r of min_j degrees[r][j]
        suffix = [1] * (nrows + 1)
        for r in range(nrows - 1, -1, -1):
            suffix[r] = suffix[r + 1] * min(degrees[r])
    states: Dict[Tuple[int, ...], int] = {tuple(sizes): 1}
    for r, row in enumerate(degrees):
        nxt: Dict[Tuple[int, ...], int] = {}
        for caps, coeff in states.items():
            for j, d in enumerate(row):
                if d == 0 or caps[j] == 0:
                    continue
                new = list(caps)
                new[j] -= 1
                key = tuple(new)
                nxt[key] = nxt.get(key, 0) + coeff * d
        states = nxt
        if not states:
            return 0
        if (
            cutoff is not None
            and suffix[r + 1]
            and sum(states.values()) * suffix[r + 1] >= cutoff
        ):
            return cutoff
    zero = tuple([0] * len(sizes))
    return states.get(zero, 0)


def multihomogeneous_bezout(
    system: PolynomialSystem, partition: Sequence[Sequence[int]]
) -> int:
    """The m-homogeneous Bezout number for the given variable partition."""
    if not system.is_square():
        raise ValueError("Bezout numbers are defined for square systems")
    blocks = [tuple(b) for b in partition]
    seen = [v for b in blocks for v in b]
    if sorted(seen) != list(range(system.nvars)):
        raise ValueError("partition must cover every variable exactly once")
    sizes = [len(b) for b in blocks]
    degrees = [
        [block_degree(poly, b) for b in blocks] for poly in system
    ]
    # coefficient extraction from the product of the linear forms
    # sum_j d_ij z_j, target monomial prod_j z_j^{sizes_j}
    return _bezout_coefficient(degrees, sizes)


def set_partitions(items: Sequence[int]) -> Iterable[List[List[int]]]:
    """All set partitions of ``items`` (Bell-number many)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for sub in set_partitions(rest):
        # put `first` into each existing block
        for i in range(len(sub)):
            yield sub[:i] + [[first] + sub[i]] + sub[i + 1 :]
        # or into its own block
        yield [[first]] + sub


def best_partition(
    system: PolynomialSystem, max_vars: int = 10
) -> Tuple[List[List[int]], int]:
    """The partition minimizing the m-homogeneous Bezout number.

    Branch-and-bound over the set partitions (enumerated as restricted
    growth strings), guarded by ``max_vars`` because their number grows
    like the Bell numbers.  Two prunes keep it fast at 8-10 variables:
    block degrees are memoized across partitions (the same block recurs
    in many partitions), and each partition's coefficient DP aborts as
    soon as its running lower bound reaches the best count found so far
    (see :func:`_bezout_coefficient`) — the cheap extremes (one block =
    total degree, all singletons) are evaluated first to seed a tight
    incumbent.
    """
    if not system.is_square():
        raise ValueError("Bezout numbers are defined for square systems")
    if system.nvars > max_vars:
        raise ValueError(
            f"{system.nvars} variables exceed max_vars={max_vars}; "
            "pass a partition to multihomogeneous_bezout directly"
        )
    n = system.nvars
    polys = list(system)
    # one degree column per distinct block; blocks grow in variable order
    # along the DFS, so a sorted tuple is a canonical key and each of the
    # <= 2^n subsets is evaluated at most once
    column_cache: Dict[Tuple[int, ...], List[int]] = {}

    def column(block: Tuple[int, ...]) -> List[int]:
        col = column_cache.get(block)
        if col is None:
            col = column_cache[block] = [block_degree(p, block) for p in polys]
        return col

    best_p: List[List[int]] | None = None
    best_count: int | None = None

    def consider(blocks: List[Tuple[int, ...]], cols: List[List[int]]) -> None:
        nonlocal best_p, best_count
        degrees = list(zip(*cols))
        sizes = [len(b) for b in blocks]
        count = _bezout_coefficient(degrees, sizes, cutoff=best_count)
        # an aborted DP returns the cutoff itself, which never wins here
        if best_count is None or count < best_count:
            best_p = [list(b) for b in blocks]
            best_count = count

    one_block = tuple(range(n))
    consider([one_block], [column(one_block)])
    if n > 1:
        singles = [(v,) for v in range(n)]
        consider(singles, [column(b) for b in singles])

    blocks: List[Tuple[int, ...]] = []
    cols: List[List[int]] = []

    def dfs(v: int) -> None:
        if v == n:
            if 1 < len(blocks) < n:  # both extremes were already seeded
                consider(blocks, cols)
            return
        for j in range(len(blocks)):
            saved_b, saved_c = blocks[j], cols[j]
            blocks[j] = saved_b + (v,)
            cols[j] = column(blocks[j])
            dfs(v + 1)
            blocks[j], cols[j] = saved_b, saved_c
        blocks.append((v,))
        cols.append(column(blocks[-1]))
        dfs(v + 1)
        blocks.pop()
        cols.pop()

    dfs(0)
    assert best_p is not None and best_count is not None
    return best_p, best_count
