"""Multi-homogeneous Bezout numbers (PHCpack's classic root-count tool).

For a partition Z = (Z_1, ..., Z_k) of the variables, the m-homogeneous
Bezout number of a square system is the coefficient of
``prod_j z_j^{|Z_j|}`` in ``prod_i (sum_j d_ij z_j)``, where ``d_ij`` is
the degree of equation i in the block-j variables.  It bounds the number
of isolated finite solutions, often far more sharply than the plain
product of total degrees — and the Pieri root count d(m, p, q) is sharper
still for the pole placement system, which is the paper's point about
"the need for parallel computation" being driven by the true root count.

The coefficient is computed by dynamic programming over the remaining
block capacities; :func:`best_partition` searches all set partitions
(Bell-number many — fine for the <= 10-variable systems used here).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..polynomials import Polynomial, PolynomialSystem

__all__ = [
    "block_degree",
    "multihomogeneous_bezout",
    "set_partitions",
    "best_partition",
]


def block_degree(poly: Polynomial, block: Sequence[int]) -> int:
    """Degree of ``poly`` in the variables of ``block`` jointly."""
    block_set = set(block)
    best = 0
    for expo, _ in poly.terms():
        best = max(best, sum(e for v, e in enumerate(expo) if v in block_set))
    return best


def multihomogeneous_bezout(
    system: PolynomialSystem, partition: Sequence[Sequence[int]]
) -> int:
    """The m-homogeneous Bezout number for the given variable partition."""
    if not system.is_square():
        raise ValueError("Bezout numbers are defined for square systems")
    blocks = [tuple(b) for b in partition]
    seen = [v for b in blocks for v in b]
    if sorted(seen) != list(range(system.nvars)):
        raise ValueError("partition must cover every variable exactly once")
    sizes = [len(b) for b in blocks]
    degrees = [
        [block_degree(poly, b) for b in blocks] for poly in system
    ]
    # DP over remaining capacities: coefficient extraction from the product
    # of the linear forms sum_j d_ij z_j, target monomial prod z_j^{sizes_j}
    states: Dict[Tuple[int, ...], int] = {tuple(sizes): 1}
    for row in degrees:
        nxt: Dict[Tuple[int, ...], int] = {}
        for caps, coeff in states.items():
            for j, d in enumerate(row):
                if d == 0 or caps[j] == 0:
                    continue
                new = list(caps)
                new[j] -= 1
                key = tuple(new)
                nxt[key] = nxt.get(key, 0) + coeff * d
        states = nxt
        if not states:
            return 0
    zero = tuple([0] * len(blocks))
    return states.get(zero, 0)


def set_partitions(items: Sequence[int]) -> Iterable[List[List[int]]]:
    """All set partitions of ``items`` (Bell-number many)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for sub in set_partitions(rest):
        # put `first` into each existing block
        for i in range(len(sub)):
            yield sub[:i] + [[first] + sub[i]] + sub[i + 1 :]
        # or into its own block
        yield [[first]] + sub


def best_partition(
    system: PolynomialSystem, max_vars: int = 10
) -> Tuple[List[List[int]], int]:
    """The partition minimizing the m-homogeneous Bezout number.

    Exhaustive over all set partitions; guarded by ``max_vars`` because
    the count grows like the Bell numbers.
    """
    if system.nvars > max_vars:
        raise ValueError(
            f"{system.nvars} variables exceed max_vars={max_vars}; "
            "pass a partition to multihomogeneous_bezout directly"
        )
    best_p: List[List[int]] | None = None
    best_count: int | None = None
    for partition in set_partitions(range(system.nvars)):
        count = multihomogeneous_bezout(system, partition)
        if best_count is None or count < best_count:
            best_p, best_count = partition, count
    assert best_p is not None and best_count is not None
    return best_p, best_count
