"""Blackbox sequential solver: start system + homotopy + tracker.

``solve`` is the one-call driver matching PHCpack's blackbox mode for the
systems in this reproduction: build a start system with known roots, form
the gamma-trick homotopy, track every path, and return classified results
plus the list of distinct finite solutions.

>>> import numpy as np
>>> from repro.systems import katsura_system
>>> report = solve(katsura_system(2), rng=np.random.default_rng(0))
>>> report.n_paths, report.n_solutions
(4, 4)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Literal

import numpy as np

from ..polyhedral import PolyhedralStart
from ..polynomials import PolynomialSystem
from ..tracker import (
    BatchTracker,
    PathResult,
    PathTracker,
    TrackerOptions,
    duplicate_path_ids,
    newton_refine_system,
    summarize_results,
)
from .convex import ConvexHomotopy
from .start import (
    LinearProductStart,
    total_degree_start_solutions,
    total_degree_start_system,
)

__all__ = ["SolveReport", "solve", "make_homotopy_and_starts", "distinct_solutions"]


@dataclass
class SolveReport:
    """Everything the blackbox solver learned about a system.

    Attributes
    ----------
    results:
        One :class:`~repro.tracker.PathResult` per tracked path, ordered
        by path id, carrying status, endpoint and effort counters.
    solutions:
        The distinct finite solutions clustered from the SUCCESS
        endpoints (see :func:`distinct_solutions`).
    summary:
        Aggregate counts/effort from
        :func:`~repro.tracker.summarize_results` — keys ``total``,
        ``success``, ``diverged``, ``failed``, ``singular`` plus
        timing/step statistics.
    """

    results: List[PathResult]
    solutions: List[np.ndarray] = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    @property
    def n_paths(self) -> int:
        return len(self.results)

    @property
    def n_solutions(self) -> int:
        return len(self.solutions)


def distinct_solutions(
    results: Iterable[PathResult], tol: float = 1e-6
) -> List[np.ndarray]:
    """Cluster SUCCESS endpoints into distinct solutions (max-norm ``tol``).

    Parameters
    ----------
    results:
        Path results to cluster; non-SUCCESS paths are ignored.
    tol:
        Two endpoints within ``tol`` in the max norm count as the same
        solution; the first representative is kept.

    Returns
    -------
    The distinct endpoints, in first-seen order.

    >>> import numpy as np
    >>> from repro.tracker import PathResult, PathStatus
    >>> def ok(x):
    ...     x = np.asarray(x, dtype=complex)
    ...     return PathResult(PathStatus.SUCCESS, x, x, 0.0)
    >>> len(distinct_solutions([ok([1.0]), ok([1.0 + 1e-9]), ok([2.0])]))
    2
    """
    out: List[np.ndarray] = []
    for r in results:
        if not r.success:
            continue
        x = r.solution
        if not any(np.max(np.abs(x - y)) < tol for y in out):
            out.append(x)
    return out


def make_homotopy_and_starts(
    target: PolynomialSystem,
    start_kind: Literal["total_degree", "linear_product", "polyhedral"] = "total_degree",
    rng: np.random.Generator | None = None,
    gamma: complex | None = None,
    options: TrackerOptions | None = None,
):
    """Build the gamma-trick homotopy plus the list of start solutions.

    Parameters
    ----------
    target:
        The square polynomial system to solve.
    start_kind:
        ``"total_degree"`` (one start root per Bezout path),
        ``"linear_product"`` (a tighter product start system), or
        ``"polyhedral"`` (one start root per unit of mixed volume — the
        BKK count; the toric roots are produced by tracking the per-cell
        polyhedral homotopies of :class:`~repro.polyhedral.
        PolyhedralStart` first, so this choice does real work).
    rng:
        Source of the random start-system constants and the gamma twist;
        pass a seeded generator for reproducible homotopies.
    gamma:
        Fix the gamma constant instead of drawing it from ``rng``.
    options:
        Tracker options for the polyhedral phase-1 tracking (ignored by
        the closed-form start kinds).

    Returns
    -------
    ``(homotopy, starts)`` — a :class:`ConvexHomotopy` and the list of
    start vectors, one per path.

    >>> import numpy as np
    >>> from repro.systems import katsura_system
    >>> homotopy, starts = make_homotopy_and_starts(
    ...     katsura_system(2), rng=np.random.default_rng(0))
    >>> len(starts)       # total degree of katsura-2: 2 * 2 * 1
    4
    """
    rng = np.random.default_rng() if rng is None else rng
    if start_kind == "total_degree":
        start_sys, consts = total_degree_start_system(target, rng)
        starts = list(total_degree_start_solutions(target.degrees(), consts))
    elif start_kind == "linear_product":
        lp = LinearProductStart(target, rng)
        start_sys = lp.system()
        starts = list(lp.solutions())
    elif start_kind == "polyhedral":
        poly_start, starts = _polyhedral_start(target, rng, options)
        start_sys = poly_start.generic_system
    else:
        raise ValueError(f"unknown start system kind {start_kind!r}")
    homotopy = ConvexHomotopy(start_sys, target, gamma=gamma, rng=rng)
    return homotopy, starts


def _polyhedral_start(
    target: PolynomialSystem,
    rng: np.random.Generator,
    options: TrackerOptions | None,
):
    """Phase 1 of the polyhedral route, shared by ``solve`` and
    :func:`make_homotopy_and_starts`: mixed cells, generic system, and
    the tracked toric starts."""
    poly_start = PolyhedralStart(target, rng)
    toric, _ = poly_start.track_starts(options)
    return poly_start, list(toric)


def _tightened(options: TrackerOptions) -> TrackerOptions:
    return TrackerOptions(
        initial_step=max(options.initial_step / 4, options.min_step),
        min_step=options.min_step / 4,
        max_step=max(options.max_step / 4, options.min_step),
        expand=options.expand,
        shrink=options.shrink,
        expand_after=options.expand_after + 2,
        corrector_tol=options.corrector_tol,
        corrector_iterations=max(3, options.corrector_iterations - 1),
        endgame_tol=options.endgame_tol,
        endgame_iterations=options.endgame_iterations,
        divergence_bound=options.divergence_bound,
        max_steps=options.max_steps * 4,
    )


def solve(
    target: PolynomialSystem,
    start: Literal["total_degree", "linear_product", "polyhedral"] = "total_degree",
    options: TrackerOptions | None = None,
    rng: np.random.Generator | None = None,
    refine: bool = True,
    rerun_duplicates: bool = True,
    mode: Literal["per_path", "batch"] = "per_path",
    start_kind: str | None = None,
) -> SolveReport:
    """Track all paths of a homotopy to ``target`` and classify endpoints.

    With ``rerun_duplicates`` (default), paths whose endpoints collide —
    the signature of a predictor jumping between close paths — are
    re-tracked with conservatively small steps, PHCpack-style.

    ``mode="batch"`` tracks every path in one structure-of-arrays front
    (:class:`BatchTracker`): same per-path decisions, a fraction of the
    Python dispatch overhead.  Duplicate re-runs always use the scalar
    tracker (they are few and need the tightened options).

    ``start="polyhedral"`` routes through the polyhedral subsystem: the
    number of tracked paths is the *mixed volume* (BKK bound) instead of
    the Bezout number — 924 instead of 5040 paths on cyclic-7 — at the
    cost of a phase-1 pass tracking the per-cell homotopies to a generic
    system first.  The report's summary then carries ``mixed_volume``,
    ``n_cells`` and ``phase1_failures``.

    Parameters
    ----------
    target:
        Square polynomial system to solve.
    start, rng:
        Passed to :func:`make_homotopy_and_starts`; seed ``rng`` for a
        reproducible run.
    options:
        :class:`~repro.tracker.TrackerOptions` for the main tracking
        pass (defaults are PHCpack-flavoured).
    refine:
        Newton-refine every SUCCESS endpoint against ``target``.
    rerun_duplicates:
        Re-track colliding endpoints with conservative steps.
    mode:
        ``"per_path"`` (scalar tracker) or ``"batch"`` (SoA front).
    start_kind:
        Deprecated alias for ``start`` (kept for older callers).

    Returns
    -------
    A :class:`SolveReport` with per-path results, the distinct finite
    solutions, and a status summary.

    >>> import numpy as np
    >>> from repro.systems import katsura_system
    >>> report = solve(katsura_system(2), mode="batch",
    ...                rng=np.random.default_rng(0))
    >>> report.summary["success"]
    4
    >>> sorted(r.success for r in report.results)
    [True, True, True, True]
    """
    if start_kind is not None:
        start = start_kind  # legacy spelling
    base_options = options or TrackerOptions()
    poly_start = None
    if start == "polyhedral":
        rng = np.random.default_rng() if rng is None else rng
        poly_start, starts = _polyhedral_start(target, rng, base_options)
        homotopy = ConvexHomotopy(poly_start.generic_system, target, rng=rng)
    else:
        homotopy, starts = make_homotopy_and_starts(target, start, rng)
    if mode == "batch":
        results = BatchTracker(base_options).track_batch(homotopy, starts)
    elif mode == "per_path":
        results = PathTracker(base_options).track_many(homotopy, starts)
    else:
        raise ValueError(f"unknown tracking mode {mode!r}")
    if rerun_duplicates:
        tight_options = base_options
        for _ in range(3):
            dups = duplicate_path_ids(results)
            if not dups:
                break
            tight_options = _tightened(tight_options)
            tight = PathTracker(tight_options)
            moved = False
            for pid in dups:
                retracked = tight.track(homotopy, starts[pid], path_id=pid)
                old = results[pid]
                if retracked.success or not old.success:
                    if not (
                        retracked.success
                        and old.success
                        and np.max(np.abs(retracked.solution - old.solution))
                        < 1e-6
                    ):
                        moved = True
                    results[pid] = retracked
            if not moved:
                # every re-track reproduced its endpoint: the collision
                # is a genuine multiple root, not a predictor jump, and
                # tighter steps will never separate it — stop escalating
                break
    if refine:
        for r in results:
            if r.success:
                nr = newton_refine_system(target, r.solution)
                if nr.converged:
                    r.solution = nr.x
                    r.residual = nr.residual
    sols = distinct_solutions(results)
    summary = summarize_results(results)
    summary["start"] = start
    if poly_start is not None:
        summary["mixed_volume"] = poly_start.mixed_volume
        summary["n_cells"] = len(poly_start.cells)
        summary["phase1_failures"] = poly_start.phase1_failures
    return SolveReport(results=results, solutions=sols, summary=summary)
