"""Blackbox sequential solver: start system + homotopy + tracker.

``solve`` is the one-call driver matching PHCpack's blackbox mode for the
systems in this reproduction: build a start system with known roots, form
the gamma-trick homotopy, track every path, and return classified results
plus the list of distinct finite solutions.

>>> import numpy as np
>>> from repro.systems import katsura_system
>>> report = solve(katsura_system(2), rng=np.random.default_rng(0))
>>> report.n_paths, report.n_solutions
(4, 4)
"""

from __future__ import annotations

import dataclasses

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, List, Literal, Optional

import numpy as np

from ..endgame import make_endgame
from ..kernels import kernel_cache_info
from ..polyhedral import PolyhedralStart
from ..polynomials import PolynomialSystem
from ..telemetry import Telemetry, current_telemetry, maybe_span, use_telemetry
from ..tracker import (
    BatchTracker,
    PathResult,
    PathStatus,
    PathTracker,
    TrackerOptions,
    greedy_cluster_indices,
    make_predictor,
    newton_refine_system,
    rescue_diverged,
    retrack_duplicate_clusters,
    summarize_results,
)
from .convex import ConvexHomotopy
from .start import (
    LinearProductStart,
    total_degree_start_solutions,
    total_degree_start_system,
)

__all__ = [
    "SolveReport",
    "solve",
    "make_homotopy_and_starts",
    "distinct_solutions",
    "multiplicity_clusters",
]


@dataclass
class SolveReport:
    """Everything the blackbox solver learned about a system.

    Attributes
    ----------
    results:
        One :class:`~repro.tracker.PathResult` per tracked path, ordered
        by path id, carrying status, endpoint and effort counters.
    solutions:
        The distinct finite solutions clustered from the SUCCESS
        endpoints (see :func:`distinct_solutions`).
    summary:
        Aggregate counts/effort from
        :func:`~repro.tracker.summarize_results` — keys ``total``,
        ``success``, ``diverged``, ``failed``, ``singular`` plus
        timing/step statistics.
    """

    results: List[PathResult]
    solutions: List[np.ndarray] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    #: distinct *singular* roots recovered by the endgame (endpoint
    #: representatives, one per multiplicity cluster); empty with the
    #: default refine endgame
    singular_solutions: List[np.ndarray] = field(default_factory=list)
    #: :meth:`~repro.telemetry.Telemetry.summary` of the run — per-layer
    #: span calls/seconds, counters, histograms; ``None`` when no
    #: telemetry context was active and ``trace_paths`` was off
    telemetry: Optional[dict] = None
    #: the live :class:`~repro.telemetry.Telemetry` object when
    #: ``trace_paths=True`` — call ``report.trace.write_trace(path)`` to
    #: export the Perfetto-openable event trace
    trace: Optional[Telemetry] = None

    @property
    def n_paths(self) -> int:
        return len(self.results)

    @property
    def n_solutions(self) -> int:
        return len(self.solutions)

    @property
    def multiplicity_histogram(self) -> dict:
        """``{multiplicity: number of distinct roots}`` over all roots.

        Regular roots count at multiplicity 1; endgame-recovered
        singular roots at their cluster multiplicity.  Empty dict when
        nothing was solved.
        """
        return self.summary.get(
            "multiplicity_histogram",
            {1: len(self.solutions)} if self.solutions else {},
        )


def distinct_solutions(
    results: Iterable[PathResult], tol: float = 1e-6
) -> List[np.ndarray]:
    """Cluster SUCCESS endpoints into distinct solutions (max-norm ``tol``).

    Parameters
    ----------
    results:
        Path results to cluster; non-SUCCESS paths are ignored.
    tol:
        Two endpoints within ``tol`` in the max norm count as the same
        solution; the first representative is kept.

    Returns
    -------
    The distinct endpoints, in first-seen order.

    >>> import numpy as np
    >>> from repro.tracker import PathResult, PathStatus
    >>> def ok(x):
    ...     x = np.asarray(x, dtype=complex)
    ...     return PathResult(PathStatus.SUCCESS, x, x, 0.0)
    >>> len(distinct_solutions([ok([1.0]), ok([1.0 + 1e-9]), ok([2.0])]))
    2
    """
    sols = [r.solution for r in results if r.success]
    return [sols[c[0]] for c in greedy_cluster_indices(sols, tol)]


def multiplicity_clusters(
    results: Iterable[PathResult],
    tol: float = 1e-6,
    singular_tol: float = 1e-3,
) -> List[dict]:
    """Cluster finite endpoints — regular *and* recovered singular —
    into distinct roots with multiplicities.

    A cluster groups every SUCCESS endpoint and every endgame-classified
    SINGULAR endpoint (one with a measured winding number) within
    ``tol`` in the max norm.  A second pass lets singular clusters
    *absorb* plain-success clusters within ``singular_tol``: near a
    multiplicity-``w`` root, Newton "successes" land anywhere within
    ``~residual^(1/w)`` of the root (and a path that jumped off a
    diverging trajectory can park there too), so a sloppy success next
    to a measured singularity is the same root, not a neighbor.

    The multiplicity of a cluster is the members' largest measured
    winding number when any exists — the monodromy-certified cycle
    length outranks path counting, which jumps can corrupt — and the
    cluster size otherwise (``m`` paths of a proper homotopy sharing an
    endpoint witness a multiplicity-``m`` root).  Each member's
    :attr:`~repro.tracker.PathResult.multiplicity` is raised to the
    cluster value.

    Returns one record per distinct root, in first-seen order:
    ``{"solution", "path_ids", "multiplicity", "singular"}``.

    >>> import numpy as np
    >>> from repro.tracker import PathResult, PathStatus
    >>> def path(x, status=PathStatus.SUCCESS, w=None):
    ...     x = np.asarray(x, dtype=complex)
    ...     return PathResult(status, x, x, 0.0, winding_number=w,
    ...                       multiplicity=w)
    >>> recs = multiplicity_clusters([
    ...     path([1.0]),
    ...     path([0.0], PathStatus.SINGULAR, w=2),
    ...     path([0.0 + 1e-9], PathStatus.SINGULAR, w=2),
    ... ])
    >>> [(int(r["multiplicity"]), r["singular"]) for r in recs]
    [(1, False), (2, True)]
    """
    finite = [
        r for r in results
        if r.success or (
            r.status is PathStatus.SINGULAR and r.winding_number is not None
        )
    ]
    idx = greedy_cluster_indices([r.solution for r in finite], tol)
    reps: List[np.ndarray] = [finite[c[0]].solution for c in idx]
    clusters: List[List[PathResult]] = [[finite[i] for i in c] for c in idx]
    # absorption pass: singular clusters swallow nearby success clusters
    is_singular = [
        any(m.status is PathStatus.SINGULAR for m in members)
        for members in clusters
    ]
    absorbed = [False] * len(clusters)
    for k, members in enumerate(clusters):
        if not is_singular[k]:
            continue
        for j in range(len(clusters)):
            if j == k or is_singular[j] or absorbed[j]:
                continue
            if np.max(np.abs(reps[j] - reps[k])) < singular_tol:
                members.extend(clusters[j])
                absorbed[j] = True
    out: List[dict] = []
    for k, (rep, members) in enumerate(zip(reps, clusters)):
        if absorbed[k]:
            continue
        windings = [m.winding_number for m in members if m.winding_number]
        mult = max(windings) if windings else len(members)
        for m in members:
            m.multiplicity = max(m.multiplicity or 1, mult)
        out.append(
            {
                "solution": rep,
                "path_ids": [m.path_id for m in members],
                "multiplicity": mult,
                "singular": is_singular[k],
            }
        )
    return out


def make_homotopy_and_starts(
    target: PolynomialSystem,
    start_kind: Literal["total_degree", "linear_product", "polyhedral"] = "total_degree",
    rng: np.random.Generator | None = None,
    gamma: complex | None = None,
    options: TrackerOptions | None = None,
    kernel: str | None = None,
):
    """Build the gamma-trick homotopy plus the list of start solutions.

    Parameters
    ----------
    target:
        The square polynomial system to solve.
    start_kind:
        ``"total_degree"`` (one start root per Bezout path),
        ``"linear_product"`` (a tighter product start system), or
        ``"polyhedral"`` (one start root per unit of mixed volume — the
        BKK count; the toric roots are produced by tracking the per-cell
        polyhedral homotopies of :class:`~repro.polyhedral.
        PolyhedralStart` first, so this choice does real work).
    rng:
        Source of the random start-system constants and the gamma twist;
        pass a seeded generator for reproducible homotopies.
    gamma:
        Fix the gamma constant instead of drawing it from ``rng``.
    options:
        Tracker options for the polyhedral phase-1 tracking (ignored by
        the closed-form start kinds).
    kernel:
        Evaluation backend for the homotopy (``None`` for the seed
        path, ``"naive"`` or ``"slp"`` — see :mod:`repro.kernels`).

    Returns
    -------
    ``(homotopy, starts)`` — a :class:`ConvexHomotopy` and the list of
    start vectors, one per path.

    >>> import numpy as np
    >>> from repro.systems import katsura_system
    >>> homotopy, starts = make_homotopy_and_starts(
    ...     katsura_system(2), rng=np.random.default_rng(0))
    >>> len(starts)       # total degree of katsura-2: 2 * 2 * 1
    4
    """
    rng = np.random.default_rng() if rng is None else rng
    if start_kind == "total_degree":
        start_sys, consts = total_degree_start_system(target, rng)
        starts = list(total_degree_start_solutions(target.degrees(), consts))
    elif start_kind == "linear_product":
        lp = LinearProductStart(target, rng)
        start_sys = lp.system()
        starts = list(lp.solutions())
    elif start_kind == "polyhedral":
        poly_start, starts = _polyhedral_start(
            target, rng, options, kernel=kernel
        )
        start_sys = poly_start.generic_system
    else:
        raise ValueError(f"unknown start system kind {start_kind!r}")
    homotopy = ConvexHomotopy(
        start_sys, target, gamma=gamma, rng=rng, kernel=kernel
    )
    return homotopy, starts


def _polyhedral_start(
    target: PolynomialSystem,
    rng: np.random.Generator,
    options: TrackerOptions | None,
    endgame=None,
    kernel: str | None = None,
):
    """Phase 1 of the polyhedral route, shared by ``solve`` and
    :func:`make_homotopy_and_starts`: mixed cells, generic system, and
    the tracked toric starts."""
    poly_start = PolyhedralStart(target, rng, kernel=kernel)
    toric, _ = poly_start.track_starts(options, endgame=endgame)
    return poly_start, list(toric)


def _warm_polyhedral_start(store, target, rng, tel):
    """Try the artifact store for a same-supports warm start.

    On a hit, returns ``(CoefficientHomotopy, starts, meta)`` — the
    cached solved generic instance deformed to ``target`` along a
    convex coefficient blend, skipping cell enumeration and phase 1
    entirely.  Any inconsistency (structure mismatch inside a
    fingerprint bucket, endpoints that no longer solve the stored
    generic system) degrades to ``(None, None, None)``: the cache
    steers the route, never the answer.
    """
    from ..artifacts import load_polyhedral_start
    from .coefficient import CoefficientHomotopy

    bundle = load_polyhedral_start(store, target)
    if bundle is None:
        return None, None, None
    with maybe_span(tel, "start_system", "solve"):
        try:
            homotopy = CoefficientHomotopy(
                bundle["supports"], bundle["coefficients"], target, rng=rng
            )
        except ValueError:
            return None, None, None
        starts = [np.asarray(s, dtype=complex) for s in bundle["starts"]]
        # paranoia against bit-rot the shape checks cannot see: the
        # cached endpoints must actually solve the cached generic system
        residual = homotopy.evaluate_batch(
            np.asarray(starts), np.zeros(len(starts))
        )
        if not np.all(np.isfinite(residual)) or np.max(np.abs(residual)) > 1e-4:
            store.stats["corrupt"] += 1
            if tel is not None:
                tel.count("artifacts.corrupt")
            return None, None, None
    return homotopy, starts, bundle["meta"]


def _tightened(options: TrackerOptions) -> TrackerOptions:
    # dataclasses.replace keeps every field not listed at the caller's
    # value, so new TrackerOptions fields survive escalation untouched.
    # Escalation also pins the seed Euler predictor: duplicate re-tracks
    # exist to undo predictor jumps, and an aggressive error-model
    # predictor at a quarter step size would still take the very leaps
    # the retrack is meant to rule out
    return dataclasses.replace(
        options,
        initial_step=max(options.initial_step / 4, options.min_step),
        min_step=options.min_step / 4,
        max_step=max(options.max_step / 4, options.min_step),
        expand_after=options.expand_after + 2,
        corrector_iterations=max(3, options.corrector_iterations - 1),
        max_steps=options.max_steps * 4,
        predictor="euler",
    )


def _fallback_retrack(results, starts, homotopy, options, strategy) -> int:
    """Re-track FAILED paths with the seed Euler settings.

    An error-model predictor trades per-step robustness for speed: on a
    hard path its larger steps (and looser corrector exits) can strand
    the tracker in a step-underflow failure that the slow fixed-step
    Euler loop walks straight through.  Paths are rare in that regime,
    so re-tracking just the failures with the conservative settings
    buys Euler's completeness at a tiny fraction of Euler's cost.  The
    failed attempt's Newton/Jacobian work is added to the retracked
    stats so solve summaries never hide the wasted effort.
    """
    failed = [i for i, r in enumerate(results) if r.status is PathStatus.FAILED]
    if not failed:
        return 0
    fallback = dataclasses.replace(options, predictor="euler")
    pids = [results[i].path_id for i in failed]
    starts_arr = np.asarray(starts, dtype=complex)
    redone = BatchTracker(fallback, endgame=strategy).track_batch(
        homotopy, starts_arr[pids], path_ids=pids
    )
    n = 0
    for i, redo in zip(failed, redone):
        old = results[i]
        redo.stats.newton_iterations += old.stats.newton_iterations
        redo.stats.jacobian_evaluations += old.stats.jacobian_evaluations
        redo.stats.tangents_recycled += old.stats.tangents_recycled
        redo.stats.steps_accepted += old.stats.steps_accepted
        redo.stats.steps_rejected += old.stats.steps_rejected
        if redo.success:
            results[i] = redo
            n += 1
    return n


def solve(
    target: PolynomialSystem,
    start: Literal["total_degree", "linear_product", "polyhedral"] = "total_degree",
    options: TrackerOptions | None = None,
    rng: np.random.Generator | None = None,
    refine: bool = True,
    rerun_duplicates: bool = True,
    mode: Literal["per_path", "batch"] = "per_path",
    start_kind: str | None = None,
    endgame="refine",
    rescue: bool = False,
    kernel: str | None = None,
    predictor: object | None = None,
    trace_paths: bool = False,
    cache=None,
) -> SolveReport:
    """Track all paths of a homotopy to ``target`` and classify endpoints.

    With ``rerun_duplicates`` (default), paths whose endpoints collide —
    the signature of a predictor jumping between close paths — are
    re-tracked with conservatively small steps, PHCpack-style.

    ``mode="batch"`` tracks every path in one structure-of-arrays front
    (:class:`BatchTracker`): same per-path decisions, a fraction of the
    Python dispatch overhead.  Duplicate re-runs always use the scalar
    tracker (they are few and need the tightened options).

    ``start="polyhedral"`` routes through the polyhedral subsystem: the
    number of tracked paths is the *mixed volume* (BKK bound) instead of
    the Bezout number — 924 instead of 5040 paths on cyclic-7 — at the
    cost of a phase-1 pass tracking the per-cell homotopies to a generic
    system first.  The report's summary then carries ``mixed_volume``,
    ``n_cells`` and ``phase1_failures``.

    Parameters
    ----------
    target:
        Square polynomial system to solve.
    start, rng:
        Passed to :func:`make_homotopy_and_starts`; seed ``rng`` for a
        reproducible run.
    options:
        :class:`~repro.tracker.TrackerOptions` for the main tracking
        pass (defaults are PHCpack-flavoured).
    refine:
        Newton-refine every SUCCESS endpoint against ``target``.
    rerun_duplicates:
        Re-track colliding endpoints with conservative steps.
    mode:
        ``"per_path"`` (scalar tracker) or ``"batch"`` (SoA front).
    start_kind:
        Deprecated alias for ``start`` (kept for older callers).
    endgame:
        Terminal-phase strategy: ``"refine"`` (default — the seed
        Newton sharpen, endpoint statuses and solutions bit-identical
        to the pre-endgame solver), ``"cauchy"`` (winding-number loops
        recover singular endpoints with ``multiplicity`` annotations,
        reported in ``report.singular_solutions`` and the summary's
        ``multiplicity_histogram``), or any
        :class:`~repro.endgame.EndgameStrategy` instance.
    rescue:
        Re-patch DIVERGED paths through the tracker-level rescue
        pipeline: plain polynomial homotopies resume in projective
        patch coordinates, so escaping paths come back classified
        AT_INFINITY (or occasionally as finite solutions the affine
        chart lost).  Off by default.
    kernel:
        Evaluation backend (see :mod:`repro.kernels`).  ``None``
        (default) keeps the seed evaluation path untouched;
        ``"naive"`` wraps it with effort accounting; ``"slp"`` runs
        residuals and Jacobians through the compiled
        straight-line-program kernels (taped once per structure,
        memoized process-wide).  When a backend is selected the
        summary carries a ``"kernel"`` dict — backend name, number of
        bound kernels, total tape ops, taping seconds, and this run's
        call/evaluation counts.
    predictor:
        Prediction strategy for the main tracking pass (see
        :mod:`repro.tracker.predictor`).  ``None`` (default) keeps
        whatever ``options`` says (itself defaulting to ``"euler"``,
        the seed arithmetic); ``"hermite"`` switches on the
        higher-order predictor pipeline — cubic Hermite prediction,
        error-model step control, and Jacobian-recycled tangent
        solves.  The summary always carries a ``"predictor"`` entry
        with the resolved name, and the effort totals
        (``newton_total``, ``jacobian_evaluations``,
        ``tangents_recycled``) quantify what the pipeline saved.
    trace_paths:
        Record the run into a :class:`~repro.telemetry.Telemetry`
        context: per-path step events (accept/reject, Newton counts,
        endgame handoffs), predictor/corrector/endgame/kernel spans, and
        a Chrome-trace event stream exported via
        ``report.trace.write_trace(path)`` and summarized by
        ``python -m repro.telemetry report``.  Never changes tracking
        decisions; off by default so the hot path stays allocation-free.
        (An ambient ``use_telemetry`` context is honoured either way —
        span aggregates land on ``report.telemetry`` whenever one is
        active.)
    cache:
        Structure-keyed artifact store for the polyhedral route (see
        :mod:`repro.artifacts`).  ``None`` (default) keeps solves
        ab-initio.  Pass an :class:`~repro.artifacts.ArtifactStore`, a
        directory path, or ``True`` for the ``$REPRO_ARTIFACT_STORE``
        default.  A warm hit on the target's Newton-polytope supports
        replaces cell enumeration + phase 1 with coefficient-parameter
        continuation from the cached solved generic instance
        (mixed-volume-many paths); a cold solve with a clean phase 1
        populates the store.  The summary's ``cache`` dict records the
        route taken.

    Returns
    -------
    A :class:`SolveReport` with per-path results, the distinct finite
    solutions, and a status summary.

    >>> import numpy as np
    >>> from repro.systems import katsura_system
    >>> report = solve(katsura_system(2), mode="batch",
    ...                rng=np.random.default_rng(0))
    >>> report.summary["success"]
    4
    >>> sorted(r.success for r in report.results)
    [True, True, True, True]

    The Griewank-Osborne system has one triple root at the origin that
    plain refinement cannot classify; the Cauchy endgame measures it:

    >>> from repro.systems import griewank_osborne_system
    >>> report = solve(griewank_osborne_system(), endgame="cauchy",
    ...                rng=np.random.default_rng(0))
    >>> report.summary["multiplicity_histogram"]
    {3: 1}
    >>> len(report.singular_solutions)
    1
    """
    if start_kind is not None:
        start = start_kind  # legacy spelling
    tel = current_telemetry()
    own = None
    if trace_paths and tel is None:
        tel = own = Telemetry(name="solve")
    if own is not None:
        with use_telemetry(own):
            report = _solve(
                target, start, options, rng, refine, rerun_duplicates,
                mode, endgame, rescue, kernel, predictor, trace_paths,
                tel, cache,
            )
    else:
        report = _solve(
            target, start, options, rng, refine, rerun_duplicates,
            mode, endgame, rescue, kernel, predictor, trace_paths,
            tel, cache,
        )
    if tel is not None:
        report.telemetry = tel.summary()
        if trace_paths:
            report.trace = tel
    return report


def _solve(
    target, start, options, rng, refine, rerun_duplicates, mode,
    endgame, rescue, kernel, predictor, trace_paths, tel, cache=None,
) -> SolveReport:
    base_options = options or TrackerOptions()
    if predictor is not None:
        base_options = dataclasses.replace(base_options, predictor=predictor)
    if trace_paths:
        base_options = dataclasses.replace(base_options, trace_paths=True)
    strategy = make_endgame(endgame)
    poly_start = None
    cache_info = None
    warm_meta = None
    # with trace_paths the whole pipeline records events, so spans from
    # phase-1 tracking, refinement and clustering land in the trace too
    tracing = tel.trace() if (tel is not None and trace_paths) else nullcontext()
    with tracing, maybe_span(tel, "solve", "solve"):
        if start == "polyhedral":
            rng = np.random.default_rng() if rng is None else rng
            store = None
            if cache is not None:
                from ..artifacts import resolve_store

                store = resolve_store(cache)
            homotopy = starts = None
            if store is not None:
                homotopy, starts, warm_meta = _warm_polyhedral_start(
                    store, target, rng, tel
                )
            if homotopy is None:
                with maybe_span(tel, "start_system", "solve"):
                    poly_start, starts = _polyhedral_start(
                        target, rng, base_options,
                        endgame=strategy, kernel=kernel,
                    )
                    homotopy = ConvexHomotopy(
                        poly_start.generic_system, target,
                        rng=rng, kernel=kernel,
                    )
                if store is not None:
                    from ..artifacts import polyhedral_key, store_polyhedral_start

                    stored = False
                    if poly_start.phase1_failures == 0:
                        store_polyhedral_start(store, target, poly_start, starts)
                        stored = True
                    cache_info = {
                        "status": "cold",
                        "key": polyhedral_key(target),
                        "n_paths": len(starts),
                        "stored": stored,
                    }
            else:
                from ..artifacts import polyhedral_key

                cache_info = {
                    "status": "warm",
                    "key": polyhedral_key(target),
                    "n_paths": len(starts),
                }
        else:
            with maybe_span(tel, "start_system", "solve"):
                homotopy, starts = make_homotopy_and_starts(
                    target, start, rng, kernel=kernel
                )
        if tel is not None:
            tel.count("solve.paths", len(starts))
        with maybe_span(tel, "track", "solve"):
            if mode == "batch":
                results = BatchTracker(
                    base_options, endgame=strategy
                ).track_batch(homotopy, starts)
            elif mode == "per_path":
                results = PathTracker(
                    base_options, endgame=strategy
                ).track_many(homotopy, starts)
            else:
                raise ValueError(f"unknown tracking mode {mode!r}")
        n_fallback = 0
        if make_predictor(base_options.predictor).error_model:
            with maybe_span(tel, "fallback_retrack", "solve"):
                n_fallback = _fallback_retrack(
                    results, starts, homotopy, base_options, strategy
                )
            if tel is not None and n_fallback:
                tel.count("solve.fallback_retracked", n_fallback)
        if rerun_duplicates:
            with maybe_span(tel, "retrack_duplicates", "solve"):
                # in batch mode a whole rung re-tracks as one vectorized
                # batch (scalar/batch parity makes this a pure wall-time
                # win); per-path mode keeps the scalar loop
                starts_arr = np.asarray(starts, dtype=complex)
                retrack_duplicate_clusters(
                    results,
                    lambda pid, opts: PathTracker(opts, endgame=strategy).track(
                        homotopy, starts[pid], path_id=pid
                    ),
                    _tightened,
                    base_options,
                    retrack_batch=(
                        (
                            lambda pids, opts: BatchTracker(
                                opts, endgame=strategy
                            ).track_batch(
                                homotopy, starts_arr[pids], path_ids=pids
                            )
                        )
                        if mode == "batch"
                        else None
                    ),
                )
        n_rescued = 0
        if rescue:
            with maybe_span(tel, "rescue", "solve"):
                results, n_rescued = rescue_diverged(
                    PathTracker(base_options, endgame=strategy),
                    homotopy,
                    results,
                )
        if refine:
            with maybe_span(tel, "refine", "solve"):
                for r in results:
                    if r.success:
                        nr = newton_refine_system(target, r.solution)
                        if nr.converged:
                            r.solution = nr.x
                            r.residual = nr.residual
        clusters = multiplicity_clusters(results)
    # the non-singular cluster representatives ARE the distinct finite
    # solutions (same tolerance, same first-seen order as
    # distinct_solutions); successes folded into a singular cluster are
    # that root, not an extra finite solution
    sols = [c["solution"] for c in clusters if not c["singular"]]
    summary = summarize_results(results)
    summary["start"] = start
    summary["endgame"] = strategy.name
    summary["predictor"] = make_predictor(base_options.predictor).name
    if n_fallback:
        summary["fallback_retracked"] = n_fallback
    usage = homotopy.kernel_usage
    if poly_start is not None:
        usage.merge(poly_start.kernel_usage)
    kernel_report = usage.report()
    if kernel_report is not None:
        # process-wide cache counters (hits/misses/sizes): cumulative
        # across solves in this process, unlike the per-run deltas above
        kernel_report["cache"] = kernel_cache_info()
        summary["kernel"] = kernel_report
    if rescue:
        summary["rescued"] = n_rescued
    histogram: dict = {}
    for c in clusters:
        histogram[c["multiplicity"]] = histogram.get(c["multiplicity"], 0) + 1
    summary["multiplicity_histogram"] = histogram
    singular_sols = [c["solution"] for c in clusters if c["singular"]]
    if poly_start is not None:
        summary["mixed_volume"] = poly_start.mixed_volume
        summary["n_cells"] = len(poly_start.cells)
        summary["phase1_failures"] = poly_start.phase1_failures
        # journal the lifting draw so DegenerateLiftingError retries are
        # reproducible and cached cells can be validated against it
        summary["lifting_seed"] = poly_start.lifting_seed
        summary["relifts"] = poly_start.relifts
    elif warm_meta is not None:
        summary["mixed_volume"] = int(warm_meta["mixed_volume"])
        summary["n_cells"] = int(warm_meta["n_cells"])
        summary["phase1_failures"] = 0  # only clean phase-1 runs are cached
        summary["lifting_seed"] = warm_meta.get("lifting_seed")
        summary["relifts"] = int(warm_meta.get("relifts", 0))
    if cache_info is not None:
        summary["cache"] = cache_info
    return SolveReport(
        results=results,
        solutions=sols,
        summary=summary,
        singular_solutions=singular_sols,
    )
