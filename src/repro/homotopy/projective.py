"""Projective re-patching: the rescue hook for plain polynomial systems.

A diverging path of an affine polynomial homotopy is (generically) a
path converging to a root *at infinity* of the target system.  In
projective space nothing diverges: homogenize both systems with one
extra coordinate ``y_h``, cut projective space with an affine patch
hyperplane ``c . y = 1``, and the escaping path becomes a bounded path
whose endpoint has ``y_h -> 0``.  That is exactly the shape of the
tracker-level rescue protocol (:mod:`repro.tracker.rescue`):

- :meth:`~repro.homotopy.convex.ConvexHomotopy.rescale_patch` builds a
  :class:`ProjectivePatchHomotopy` whose patch vector is the conjugate
  of the current (normalized) point — so the re-patched start satisfies
  the patch equation exactly and is perfectly scaled (unit norm);
- the tracker resumes the same path in patch coordinates from the
  reached ``t``;
- :meth:`ProjectivePatchHomotopy.finalize_rescued` maps the finished
  endpoint back: ``y_h`` comfortably away from zero dehomogenizes to an
  ordinary affine solution, ``y_h ~ 0`` classifies the path
  AT_INFINITY with the (normalized) projective representative as its
  solution.

The patched homotopy implements both tracker protocols, so rescued
fronts can run scalar or batched, and the Cauchy endgame can loop it in
complex time like any other homotopy.
"""

from __future__ import annotations

import numpy as np

from ..polynomials import PolynomialSystem
from ..tracker import BatchHomotopy, HomotopyFunction, PathStatus
from ..tracker.interface import _per_path_t

__all__ = ["homogenized_pair", "ProjectivePatchHomotopy"]


def homogenized_pair(start: PolynomialSystem, target: PolynomialSystem):
    """Homogenize a start/target pair with one shared extra variable.

    The extra coordinate is appended *last* (the convention of
    :meth:`repro.polynomials.Polynomial.homogenize`), so an affine point
    ``x`` lifts to ``[x, 1]`` and a patch point ``y`` with ``y_h != 0``
    drops back to ``y[:-1] / y_h``.
    """
    start_h = PolynomialSystem([p.homogenize() for p in start])
    target_h = PolynomialSystem([p.homogenize() for p in target])
    return start_h, target_h


class ProjectivePatchHomotopy(HomotopyFunction, BatchHomotopy):
    """``H(y, t) = [gamma (1-t) G_h(y) + t F_h(y);  c . y - 1]``.

    ``G_h`` and ``F_h`` are the homogenizations of an affine convex
    homotopy's start and target systems (``n`` equations, ``n + 1``
    variables) and ``c`` is the affine patch vector; the last row pins
    the patch, making the system square again.  The same gamma as the
    affine homotopy keeps the tracked path the *same geometric path* —
    only the chart changes.
    """

    def __init__(
        self,
        start_h: PolynomialSystem,
        target_h: PolynomialSystem,
        gamma: complex,
        patch: np.ndarray,
        affine_target: PolynomialSystem | None = None,
        infinity_tol: float = 1e-8,
        residual_tol: float = 1e-6,
        affine_bound: float = 1e3,
        kernel: str | None = None,
    ) -> None:
        if start_h.nvars != target_h.nvars:
            raise ValueError("homogenized systems must share variables")
        if start_h.neqs != target_h.neqs or start_h.neqs + 1 != start_h.nvars:
            raise ValueError(
                "need n homogeneous equations in n + 1 variables"
            )
        patch = np.asarray(patch, dtype=complex)
        if patch.shape != (start_h.nvars,):
            raise ValueError(f"patch must have shape ({start_h.nvars},)")
        self.start_h = start_h
        self.target_h = target_h
        self.gamma = complex(gamma)
        self.patch = patch
        self.affine_target = affine_target
        self.infinity_tol = float(infinity_tol)
        self.residual_tol = float(residual_tol)
        self.affine_bound = float(affine_bound)
        self._bind_kernel(kernel)

    def _bind_kernel(self, kernel: str | None) -> None:
        from ..kernels import compile_system_kernel, normalize_kernel

        self.kernel = normalize_kernel(kernel)
        if self.kernel is None:
            self._kg = self._kf = None
        else:
            self._kg = compile_system_kernel(self.start_h, self.kernel)
            self._kf = compile_system_kernel(self.target_h, self.kernel)

    @property
    def kernels(self) -> tuple:
        """Bound kernel objects (for stats accounting); may be empty."""
        return tuple(k for k in (self._kg, self._kf) if k is not None)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_kg"] = state["_kf"] = None  # exec'd code doesn't pickle
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._bind_kernel(self.kernel)

    def _pair_eval(self, X: np.ndarray):
        if self._kg is not None:
            return self._kg.evaluate(X), self._kf.evaluate(X)
        return self.start_h.evaluate_many(X), self.target_h.evaluate_many(X)

    def _pair_eval_jac(self, X: np.ndarray):
        if self._kg is not None:
            g, jg = self._kg.evaluate_and_jacobian(X)
            f, jf = self._kf.evaluate_and_jacobian(X)
        else:
            g, jg = self.start_h.evaluate_and_jacobian_many(X)
            f, jf = self.target_h.evaluate_and_jacobian_many(X)
        return g, jg, f, jf

    @property
    def dim(self) -> int:
        return self.start_h.nvars

    # ------------------------------------------------------------------
    # BatchHomotopy protocol (scalar methods run through it, one row)
    # ------------------------------------------------------------------
    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        g, f = self._pair_eval(X)
        w = self.gamma * (1.0 - tt)
        out = np.empty((X.shape[0], self.dim), dtype=complex)
        out[:, :-1] = w[:, None] * g + tt[:, None] * f
        out[:, -1] = X @ self.patch - 1.0
        return out

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(X, t)[1]

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        _per_path_t(t, X.shape[0])  # shape check only; dH/dt is t-free
        g, f = self._pair_eval(X)
        out = np.zeros((X.shape[0], self.dim), dtype=complex)
        out[:, :-1] = f - self.gamma * g
        return out

    def evaluate_and_jacobian_batch(self, X, t):
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        g, jg, f, jf = self._pair_eval_jac(X)
        w = self.gamma * (1.0 - tt)
        res = np.empty((X.shape[0], self.dim), dtype=complex)
        res[:, :-1] = w[:, None] * g + tt[:, None] * f
        res[:, -1] = X @ self.patch - 1.0
        jac = np.empty((X.shape[0], self.dim, self.dim), dtype=complex)
        jac[:, :-1] = w[:, None, None] * jg + tt[:, None, None] * jf
        jac[:, -1] = self.patch
        return res, jac

    def jacobians_batch(self, X, t):
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        g, jg, f, jf = self._pair_eval_jac(X)
        w = self.gamma * (1.0 - tt)
        jac_x = np.empty((X.shape[0], self.dim, self.dim), dtype=complex)
        jac_x[:, :-1] = w[:, None, None] * jg + tt[:, None, None] * jf
        jac_x[:, -1] = self.patch
        jac_t = np.zeros((X.shape[0], self.dim), dtype=complex)
        jac_t[:, :-1] = f - self.gamma * g
        return jac_x, jac_t

    # ------------------------------------------------------------------
    # scalar HomotopyFunction protocol
    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_and_jacobian_x(x, t)[1]

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.jacobian_t_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def evaluate_and_jacobian_x(self, x, t):
        res, jac = self.evaluate_and_jacobian_batch(
            np.asarray(x, dtype=complex)[None, :], t
        )
        return res[0], jac[0]

    # ------------------------------------------------------------------
    # rescue protocol
    # ------------------------------------------------------------------
    def finalize_rescued(self, result):
        """Dehomogenize a finished patch endpoint, or flag infinity.

        Three-way, scale-invariant classification.  ``|y_h| <=
        infinity_tol * max|y|`` is a clean point at infinity.
        Otherwise the point dehomogenizes; an affine residual within
        ``residual_tol`` is an honest finite solution, while a *bad*
        affine residual at a large dehomogenized norm (``>=
        affine_bound``) is the signature of a singular root at infinity
        that the patch endgame could not fully pin down — still
        AT_INFINITY, reported with the unit-normalized projective
        representative.  (Roots at infinity of deficient systems are
        typically singular points of the homogenization, which is
        exactly why their affine paths were the slow diverging ones.)
        Anything else is FAILED, which makes the rescue pipeline keep
        the original diverged result.  Endgame annotations (a root at
        infinity can carry a winding number too) survive untouched.
        """
        if result.status not in (PathStatus.SUCCESS, PathStatus.SINGULAR):
            return result  # rescue failed; the pipeline keeps the original
        y = np.asarray(result.solution, dtype=complex)
        scale = float(np.max(np.abs(y)))
        if scale == 0.0 or not np.all(np.isfinite(y)):
            result.status = PathStatus.FAILED
            return result
        if abs(y[-1]) <= self.infinity_tol * scale:
            result.status = PathStatus.AT_INFINITY
            result.solution = y / np.linalg.norm(y)
            return result
        x = y[:-1] / y[-1]
        residual = result.residual
        if self.affine_target is not None:
            residual = float(np.max(np.abs(self.affine_target.evaluate(x))))
        if residual <= self.residual_tol:
            result.solution = x
            result.residual = residual
            return result
        if float(np.max(np.abs(x))) >= self.affine_bound:
            result.status = PathStatus.AT_INFINITY
            result.solution = y / np.linalg.norm(y)
            return result
        result.status = PathStatus.FAILED
        return result

    def __repr__(self) -> str:
        return (
            f"ProjectivePatchHomotopy(dim={self.dim}, "
            f"gamma={self.gamma:.4f})"
        )
