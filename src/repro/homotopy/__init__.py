"""Homotopy construction: gamma trick, start systems, blackbox solve."""

from .bezout import (
    best_partition,
    block_degree,
    multihomogeneous_bezout,
    set_partitions,
)
from .convex import ConvexHomotopy, random_gamma
from .projective import ProjectivePatchHomotopy, homogenized_pair
from .solve import (
    SolveReport,
    distinct_solutions,
    make_homotopy_and_starts,
    multiplicity_clusters,
    solve,
)
from .start import (
    LinearProductStart,
    linear_product_start_system,
    total_degree_start_solutions,
    total_degree_start_system,
)

__all__ = [
    "best_partition",
    "block_degree",
    "multihomogeneous_bezout",
    "set_partitions",
    "ConvexHomotopy",
    "random_gamma",
    "ProjectivePatchHomotopy",
    "homogenized_pair",
    "SolveReport",
    "distinct_solutions",
    "make_homotopy_and_starts",
    "multiplicity_clusters",
    "solve",
    "LinearProductStart",
    "linear_product_start_system",
    "total_degree_start_solutions",
    "total_degree_start_system",
]

#: Root-count reports live in :mod:`repro.homotopy.counts`, which doubles
#: as a ``python -m repro.homotopy.counts`` entry point — importing it
#: here eagerly would make runpy warn about the duplicate module, so the
#: names resolve lazily instead (PEP 562).
_COUNTS_EXPORTS = (
    "RootCountReport",
    "format_table",
    "named_report",
    "pieri_counts",
    "root_counts",
)
__all__ += list(_COUNTS_EXPORTS)


def __getattr__(name):
    if name in _COUNTS_EXPORTS:
        from . import counts

        return getattr(counts, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
