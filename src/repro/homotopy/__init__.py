"""Homotopy construction: gamma trick, start systems, blackbox solve."""

from .bezout import (
    best_partition,
    block_degree,
    multihomogeneous_bezout,
    set_partitions,
)
from .convex import ConvexHomotopy, random_gamma
from .solve import SolveReport, distinct_solutions, make_homotopy_and_starts, solve
from .start import (
    LinearProductStart,
    linear_product_start_system,
    total_degree_start_solutions,
    total_degree_start_system,
)

__all__ = [
    "best_partition",
    "block_degree",
    "multihomogeneous_bezout",
    "set_partitions",
    "ConvexHomotopy",
    "random_gamma",
    "SolveReport",
    "distinct_solutions",
    "make_homotopy_and_starts",
    "solve",
    "LinearProductStart",
    "linear_product_start_system",
    "total_degree_start_solutions",
    "total_degree_start_system",
]
