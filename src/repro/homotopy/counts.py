"""Unified root-count reports: the paper's "why parallelism" table.

The paper's core argument is that the *true* root count — Pieri's
d(m, p, q) for pole placement, the BKK/mixed-volume bound for sparse
benchmark systems — sits far below the naive Bezout bounds, and that
this true count is what sizes the parallel workload (one tracked path
per root).  This module puts all four counts side by side for any
square system:

==================  ====================================================
total degree        product of the equations' degrees (classic Bezout)
m-homogeneous       best multi-homogeneous Bezout number over variable
                    partitions (:func:`repro.homotopy.bezout.
                    best_partition`, branch-and-bound)
mixed volume        the BKK bound from the polyhedral subsystem
                    (:func:`repro.polyhedral.mixed_volume`; affine
                    convention, so it counts roots in all of C^n)
d(m, p, q)          the Pieri root count, pole-placement systems only
==================  ====================================================

Run it from the command line on named systems::

    python -m repro.homotopy.counts cyclic-7 noon-5 pieri-2-2-1
    python -m repro.homotopy.counts            # the default paper table

>>> import numpy as np
>>> from repro.systems import cyclic_roots_system
>>> r = root_counts(cyclic_roots_system(5), name="cyclic-5",
...                 rng=np.random.default_rng(0))
>>> r.total_degree, r.mixed_volume
(120, 70)
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..polynomials import PolynomialSystem
from .bezout import best_partition

__all__ = [
    "RootCountReport",
    "root_counts",
    "pieri_counts",
    "named_report",
    "format_table",
    "main",
]


@dataclass
class RootCountReport:
    """Every root count we can attach to one system, side by side.

    ``None`` marks a count that does not apply (``pieri`` for benchmark
    systems) or was skipped (``m_homogeneous`` beyond the partition
    search's variable budget, ``mixed_volume`` when disabled).  ``known``
    is an independently known true finite-root count, when the
    literature provides one (cyclic's table, rps's 2^g, d(m, p, q)
    itself for pole placement).
    """

    name: str
    nvars: int
    total_degree: Optional[int] = None
    m_homogeneous: Optional[int] = None
    partition: Optional[List[List[int]]] = None
    mixed_volume: Optional[int] = None
    pieri: Optional[int] = None
    known: Optional[int] = None
    seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def best_bound(self) -> Optional[int]:
        """The sharpest applicable bound — the tracked-path budget."""
        counts = [
            c
            for c in (self.total_degree, self.m_homogeneous,
                      self.mixed_volume, self.pieri)
            if c is not None
        ]
        return min(counts) if counts else None


def root_counts(
    system: PolynomialSystem,
    name: str = "system",
    rng: np.random.Generator | None = None,
    known: Optional[int] = None,
    with_m_homogeneous: bool = True,
    with_mixed_volume: bool = True,
    max_mhom_vars: int = 10,
) -> RootCountReport:
    """Compute every applicable root count for a square system.

    The m-homogeneous search is skipped (count left ``None``) when the
    system has more than ``max_mhom_vars`` variables — the partition
    space grows like the Bell numbers and the branch-and-bound budget
    runs out around 10.
    """
    if not system.is_square():
        raise ValueError("root counts are defined for square systems")
    rng = np.random.default_rng() if rng is None else rng
    report = RootCountReport(name=name, nvars=system.nvars, known=known)
    t0 = time.perf_counter()
    td = 1
    for d in system.degrees():
        td *= d
    report.total_degree = td
    report.seconds["total_degree"] = time.perf_counter() - t0
    if with_m_homogeneous and system.nvars <= max_mhom_vars:
        t0 = time.perf_counter()
        report.partition, report.m_homogeneous = best_partition(
            system, max_vars=max_mhom_vars
        )
        report.seconds["m_homogeneous"] = time.perf_counter() - t0
    if with_mixed_volume:
        from ..polyhedral import mixed_volume

        t0 = time.perf_counter()
        report.mixed_volume = mixed_volume(system, rng=rng)
        report.seconds["mixed_volume"] = time.perf_counter() - t0
    return report


def _static_feedback_system(
    m: int, p: int, rng: np.random.Generator
) -> PolynomialSystem:
    """The q = 0 pole-placement coefficient system in the entries of F.

    ``det(sI - A - BFC) - prod (s - pole_k)``, coefficients per power of
    ``s``, for a random generic plant — ``m p`` polynomial equations in
    the ``m p`` entries of the static feedback matrix.  The determinant
    is expanded by memoized minors (O(n 2^n) polynomial products), and
    terms of F-degree above ``min(m, p)`` — which cancel exactly because
    ``rank(BFC) <= min(m, p)`` — are pruned as float roundoff.
    """
    from ..control import random_plant
    from ..polynomials import Polynomial, constant

    plant = random_plant(m, p, 0, rng)
    n = plant.n_states
    nv = m * p + 1  # F entries then s
    s_var = m * p
    fmat = [
        [
            Polynomial({tuple(int(v == p * i + j) for v in range(nv)): 1.0}, nv)
            for j in range(p)
        ]
        for i in range(m)
    ]
    entries: List[List[Polynomial]] = []
    for i in range(n):
        row = []
        for j in range(n):
            acc = constant(-plant.a[i, j], nv)
            if i == j:
                acc = acc + Polynomial(
                    {tuple(int(v == s_var) for v in range(nv)): 1.0}, nv
                )
            for k in range(m):
                for l in range(p):
                    coef = complex(plant.b[i, k] * plant.c[l, j])
                    if coef != 0:
                        acc = acc - coef * fmat[k][l]
            row.append(acc)
        entries.append(row)

    minors: Dict[int, Polynomial] = {}

    def minor(r: int, colmask: int) -> Polynomial:
        # det of rows r..n-1 against the columns still in colmask
        if r == n:
            return constant(1.0, nv)
        cached = minors.get((r << n) | colmask)
        if cached is not None:
            return cached
        acc = constant(0.0, nv)
        sign = 1.0
        for j in range(n):
            if not colmask >> j & 1:
                continue
            acc = acc + sign * (entries[r][j] * minor(r + 1, colmask & ~(1 << j)))
            sign = -sign
        minors[(r << n) | colmask] = acc
        return acc

    det = minor(0, (1 << n) - 1)
    poles = np.exp(2j * np.pi * rng.random(n))  # generic prescribed poles
    target = np.poly(poles)[::-1]  # coefficient of s^k at index k
    eqs = []
    for k in range(n):
        coeffs = {
            e[: m * p]: c
            for e, c in det.terms()
            if e[s_var] == k and abs(c) > 1e-9  # rank-truncation roundoff
        }
        eqs.append(Polynomial(coeffs, m * p) - complex(target[k]))
    return PolynomialSystem(eqs)


def pieri_counts(
    m: int,
    p: int,
    q: int = 0,
    rng: np.random.Generator | None = None,
    max_states: int = 8,
    **kwargs,
) -> RootCountReport:
    """Root counts for the (m, p, q) pole-placement problem.

    The Pieri count d(m, p, q) always applies.  For static feedback
    (``q = 0``) with at most ``max_states`` closed-loop states the
    polynomial coefficient formulation is built explicitly, so the
    Bezout-style bounds land in the same row and the gap the paper
    leads with — d(m, p, q) far below every product bound — is measured
    rather than asserted.  Dynamic compensators (``q > 0``) keep only
    the Pieri count: their coefficient systems outgrow the symbolic
    determinant expansion.
    """
    from ..schubert import pieri_root_count

    rng = np.random.default_rng() if rng is None else rng
    name = f"pieri-{m}-{p}-{q}"
    nvars = m * p + q * (m + p)
    t0 = time.perf_counter()
    d = pieri_root_count(m, p, q)
    if q == 0 and m * p <= max_states:
        report = root_counts(
            _static_feedback_system(m, p, rng), name=name, rng=rng, **kwargs
        )
    else:
        report = RootCountReport(name=name, nvars=nvars)
    report.pieri = d
    report.known = d
    report.seconds["pieri"] = time.perf_counter() - t0
    return report


def named_report(
    spec: str, rng: np.random.Generator | None = None, **kwargs
) -> RootCountReport:
    """Root counts for a named system: ``kind-param[-param...]``.

    Known kinds: ``cyclic-N``, ``katsura-N``, ``noon-N``, ``rps-N`` and
    ``pieri-M-P[-Q]``.

    >>> import numpy as np
    >>> named_report("noon-3", rng=np.random.default_rng(0)).mixed_volume
    21
    """
    rng = np.random.default_rng() if rng is None else rng
    parts = spec.strip().lower().split("-")
    kind, args = parts[0], parts[1:]
    try:
        nums = [int(a) for a in args]
    except ValueError:
        raise ValueError(f"malformed system spec {spec!r}") from None
    if kind == "pieri":
        if len(nums) == 2:
            nums.append(0)
        if len(nums) != 3:
            raise ValueError(f"pieri specs are pieri-M-P[-Q], got {spec!r}")
        return pieri_counts(*nums, rng=rng, **kwargs)
    if len(nums) != 1:
        raise ValueError(f"{kind} specs take one parameter, got {spec!r}")
    n = nums[0]
    known: Optional[int] = None
    if kind == "cyclic":
        from ..systems import CYCLIC_FINITE_ROOTS, cyclic_roots_system

        system = cyclic_roots_system(n)
        known = CYCLIC_FINITE_ROOTS.get(n)
    elif kind == "katsura":
        from ..systems import katsura_system

        system = katsura_system(n)
    elif kind == "noon":
        from ..systems import noon_system

        system = noon_system(n)
    elif kind == "rps":
        from ..systems import rps_surrogate_system
        from ..systems.rps import rps_finite_root_count

        system = rps_surrogate_system(n, rng=rng)
        known = rps_finite_root_count(n)
    else:
        raise ValueError(
            f"unknown system kind {kind!r}; expected cyclic/katsura/noon/"
            f"rps/pieri"
        )
    return root_counts(system, name=spec, rng=rng, known=known, **kwargs)


#: Default rows for the paper-style table: the sparse benchmark family
#: (mixed volume is the sharp bound) plus pole placement (Pieri is).
PAPER_TABLE = (
    "cyclic-5",
    "cyclic-6",
    "cyclic-7",
    "noon-4",
    "noon-5",
    "katsura-5",
    "rps-5",
    "pieri-2-2-0",
    "pieri-2-3-0",
    "pieri-2-2-1",
    "pieri-2-3-1",
)


def format_table(reports: Sequence[RootCountReport]) -> str:
    """Render reports as the aligned root-count comparison table."""
    headers = (
        "system", "vars", "total degree", "m-homogeneous",
        "mixed volume", "d(m,p,q)", "known roots",
    )
    rows = [headers]
    for r in reports:
        rows.append(
            (
                r.name,
                str(r.nvars),
                "—" if r.total_degree is None else str(r.total_degree),
                "—" if r.m_homogeneous is None else str(r.m_homogeneous),
                "—" if r.mixed_volume is None else str(r.mixed_volume),
                "—" if r.pieri is None else str(r.pieri),
                "—" if r.known is None else str(r.known),
            )
        )
    widths = [max(len(row[c]) for row in rows) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [row[c].rjust(widths[c]) for c in range(1, len(headers))]
        lines.append("  ".join(cells).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.homotopy.counts",
        description="Root-count comparison table: total degree vs best "
        "m-homogeneous Bezout vs mixed volume vs Pieri d(m,p,q).",
    )
    parser.add_argument(
        "systems", nargs="*", metavar="SYSTEM",
        help="named systems like cyclic-7, noon-5, pieri-2-2-1 "
        "(default: the paper-style table)",
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    parser.add_argument(
        "--skip-mixed-volume", action="store_true",
        help="leave the mixed-volume column out (cheapest run)",
    )
    parser.add_argument(
        "--skip-m-homogeneous", action="store_true",
        help="leave the m-homogeneous column out",
    )
    parser.add_argument(
        "--partitions", action="store_true",
        help="also print the best partition behind each m-homogeneous count",
    )
    args = parser.parse_args(argv)
    names = list(args.systems) if args.systems else list(PAPER_TABLE)
    rng = np.random.default_rng(args.seed)
    reports = []
    for name in names:
        try:
            reports.append(
                named_report(
                    name,
                    rng=rng,
                    with_mixed_volume=not args.skip_mixed_volume,
                    with_m_homogeneous=not args.skip_m_homogeneous,
                )
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(format_table(reports))
    if args.partitions:
        for r in reports:
            if r.partition is not None:
                blocks = " | ".join(
                    "{" + ",".join(str(v) for v in b) + "}" for b in r.partition
                )
                print(f"{r.name}: best partition {blocks}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CLI tests
    sys.exit(main())
