"""Coefficient-parameter continuation over *shared* supports.

    H_i(x, t) = sum_a ((1 - t) gamma c^G_{i,a} + t c^F_{i,a}) x^a

Mathematically this is exactly the convex homotopy
``gamma (1-t) G + t F`` (:class:`~repro.homotopy.convex.ConvexHomotopy`)
— same gamma trick, same probability-one path regularity — specialized
to the case the artifact store serves: the start ``G`` is a *cached
generic system with the target's supports*, so ``G`` and ``F`` differ
only in coefficients.  That structural identity buys the warm path its
speed: instead of evaluating two full polynomial systems per tracker
step, one shared monomial table is built per batch and only the
coefficient vector is blended in ``t``; ``dH/dt = F - gamma G`` falls
out of the same table analytically (per term: ``c^F - gamma c^G``).

The class is batch-protocol native like
:class:`~repro.schubert.parameter.PieriParameterHomotopy` — scalar
methods run through the batched ones as one-row batches, so scalar and
batched tracking see bit-identical arithmetic.

>>> import numpy as np
>>> from repro.polyhedral.supports import (
...     augment_with_origin, random_coefficient_system, supports_of)
>>> from repro.systems import katsura_system
>>> target = katsura_system(2)
>>> supports = augment_with_origin(supports_of(target))
>>> generic, coeffs = random_coefficient_system(
...     supports, np.random.default_rng(0))
>>> hom = CoefficientHomotopy(supports, coeffs, target, gamma=0.6 + 0.8j)
>>> x = np.array([0.3 + 0.1j, -0.2j, 0.5])
>>> np.allclose(hom.evaluate(x, 1.0), target.evaluate(x))   # H(., 1) == F
True
>>> np.allclose(hom.evaluate(x, 0.0),
...             (0.6 + 0.8j) * generic.evaluate(x))         # H(., 0) == gG
True
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..kernels import KernelUsage
from ..polynomials import PolynomialSystem
from ..tracker import BatchHomotopy, HomotopyFunction
from ..tracker.interface import _per_path_t
from .convex import random_gamma

__all__ = ["CoefficientHomotopy"]


class CoefficientHomotopy(HomotopyFunction, BatchHomotopy):
    """Convex coefficient blend between a cached generic system and a
    target sharing its supports.

    Parameters
    ----------
    supports:
        One ``(m_i, nvars)`` exponent array per equation — the cached
        (usually origin-augmented) supports the generic system was
        drawn on.
    generic_coefficients:
        Row-aligned coefficients of the cached generic system
        (``coefficients[i][k]`` belongs to ``supports[i][k]``).
    target:
        The query system.  Every target monomial must appear in the
        supports (a :class:`ValueError` otherwise — the caller should
        treat that as a structure mismatch and fall back to the cold
        ab-initio route); support rows the target lacks get a zero
        target coefficient, so ``H(., 1)`` *is* the target exactly.
    gamma, rng:
        The gamma twist (drawn from ``rng`` when not given).
    """

    def __init__(
        self,
        supports: Sequence[np.ndarray],
        generic_coefficients: Sequence[np.ndarray],
        target: PolynomialSystem,
        gamma: complex | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not target.is_square():
            raise ValueError("homotopy continuation needs a square system")
        if len(supports) != target.neqs:
            raise ValueError("supports/target equation count mismatch")
        self.target = target
        self.gamma = random_gamma(rng) if gamma is None else complex(gamma)
        if self.gamma == 0:
            raise ValueError("gamma must be nonzero")
        self._nvars = int(target.nvars)
        self.generic_coefficients = [
            np.asarray(c, dtype=complex) for c in generic_coefficients
        ]

        mono_index: dict = {}

        def intern(expo: tuple) -> int:
            idx = mono_index.get(expo)
            if idx is None:
                idx = len(mono_index)
                mono_index[expo] = idx
            return idx

        rows: List[int] = []
        cols: List[int] = []
        cg: List[complex] = []
        cf: List[complex] = []
        jrows: List[int] = []
        jvars: List[int] = []
        jcols: List[int] = []
        jcg: List[complex] = []
        jcf: List[complex] = []
        for i, (support, gcoefs, poly) in enumerate(
            zip(supports, self.generic_coefficients, target)
        ):
            support = np.asarray(support, dtype=np.int64)
            if len(support) != len(gcoefs):
                raise ValueError("support/coefficient row mismatch")
            fmap = {
                tuple(int(e) for e in expo): complex(c)
                for expo, c in poly.terms()
            }
            for a, g in zip(support, gcoefs):
                expo = tuple(int(v) for v in a)
                f = fmap.pop(expo, 0.0 + 0.0j)
                g = self.gamma * complex(g)
                rows.append(i)
                cols.append(intern(expo))
                cg.append(g)
                cf.append(f)
                for v, ev in enumerate(expo):
                    if ev == 0:
                        continue
                    reduced = list(expo)
                    reduced[v] = ev - 1
                    jrows.append(i)
                    jvars.append(v)
                    jcols.append(intern(tuple(reduced)))
                    jcg.append(ev * g)
                    jcf.append(ev * f)
            if fmap:
                raise ValueError(
                    f"equation {i}: target monomials {sorted(fmap)} are "
                    "outside the cached supports (structure mismatch)"
                )
        self._expos = np.zeros(
            (max(1, len(mono_index)), self._nvars), dtype=np.int64
        )
        for expo, idx in mono_index.items():
            self._expos[idx] = expo
        self._rows = np.asarray(rows, dtype=np.int64)
        self._cols = np.asarray(cols, dtype=np.int64)
        self._cg = np.asarray(cg, dtype=complex)
        self._cf = np.asarray(cf, dtype=complex)
        self._jrows = np.asarray(jrows, dtype=np.int64)
        self._jvars = np.asarray(jvars, dtype=np.int64)
        self._jcols = np.asarray(jcols, dtype=np.int64)
        self._jcg = np.asarray(jcg, dtype=complex)
        self._jcf = np.asarray(jcf, dtype=complex)
        # no compiled kernels on this path: the term tables already
        # amortize everything a tape would (solve() reads this field)
        self.kernel_usage = KernelUsage([])
        self.kernel = None

    @property
    def kernels(self) -> tuple:
        return ()

    @property
    def dim(self) -> int:
        return self._nvars

    # ------------------------------------------------------------------
    def _mono(self, X: np.ndarray) -> np.ndarray:
        # (npts, nmono); 0**0 == 1 keeps constants right at x = 0
        return np.prod(X[:, None, :] ** self._expos[None, :, :], axis=2)

    def _scatter(self, rows, contrib, npts) -> np.ndarray:
        out = np.zeros((self._nvars, npts), dtype=complex)
        np.add.at(out, rows, contrib.T)
        return out.T

    # ------------------------------------------------------------------
    # BatchHomotopy protocol (scalar methods are one-row batches)
    # ------------------------------------------------------------------
    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        with np.errstate(invalid="ignore", over="ignore"):
            mono = self._mono(X)
            w = (1.0 - tt)[:, None]
            contrib = (
                w * self._cg[None, :] + tt[:, None] * self._cf[None, :]
            ) * mono[:, self._cols]
        return self._scatter(self._rows, contrib, X.shape[0])

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(X, t)[1]

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        _per_path_t(t, X.shape[0])  # shape check only; dH/dt is t-free
        with np.errstate(invalid="ignore", over="ignore"):
            mono = self._mono(X)
            contrib = (self._cf - self._cg)[None, :] * mono[:, self._cols]
        return self._scatter(self._rows, contrib, X.shape[0])

    def evaluate_and_jacobian_batch(self, X, t):
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        npts = X.shape[0]
        with np.errstate(invalid="ignore", over="ignore"):
            mono = self._mono(X)
            w = (1.0 - tt)[:, None]
            contrib = (
                w * self._cg[None, :] + tt[:, None] * self._cf[None, :]
            ) * mono[:, self._cols]
            res = self._scatter(self._rows, contrib, npts)
            jac = np.zeros((self._nvars, self._nvars, npts), dtype=complex)
            if len(self._jrows):
                jcontrib = (
                    w * self._jcg[None, :] + tt[:, None] * self._jcf[None, :]
                ) * mono[:, self._jcols]
                np.add.at(jac, (self._jrows, self._jvars), jcontrib.T)
        return res, jac.transpose(2, 0, 1)

    def jacobians_batch(self, X, t):
        # fused predictor call: one monomial table for dH/dx and dH/dt
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        npts = X.shape[0]
        with np.errstate(invalid="ignore", over="ignore"):
            mono = self._mono(X)
            w = (1.0 - tt)[:, None]
            jac = np.zeros((self._nvars, self._nvars, npts), dtype=complex)
            if len(self._jrows):
                jcontrib = (
                    w * self._jcg[None, :] + tt[:, None] * self._jcf[None, :]
                ) * mono[:, self._jcols]
                np.add.at(jac, (self._jrows, self._jvars), jcontrib.T)
            dcontrib = (self._cf - self._cg)[None, :] * mono[:, self._cols]
            dt = self._scatter(self._rows, dcontrib, npts)
        return jac.transpose(2, 0, 1), dt

    # ------------------------------------------------------------------
    # scalar HomotopyFunction protocol
    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_and_jacobian_x(x, t)[1]

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.jacobian_t_batch(
            np.asarray(x, dtype=complex)[None, :], t
        )[0]

    def evaluate_and_jacobian_x(self, x, t):
        res, jac = self.evaluate_and_jacobian_batch(
            np.asarray(x, dtype=complex)[None, :], t
        )
        return res[0], jac[0]

    # ------------------------------------------------------------------
    # tracker-level rescue hook: same projective re-patch as the convex
    # homotopy — H is gamma (1-t) G + t F, so the homogenized pair and
    # gamma carry over verbatim
    # ------------------------------------------------------------------
    def rescale_patch(self, x: np.ndarray, t: float):
        if t <= 0.0 or t >= 1.0:
            return None
        x = np.asarray(x, dtype=complex)
        if not np.all(np.isfinite(x)):
            return None
        from ..polyhedral.supports import coefficient_system
        from .projective import ProjectivePatchHomotopy, homogenized_pair

        cached = getattr(self, "_homogenized", None)
        if cached is None:
            generic = coefficient_system(
                self._supports_arrays(), self.generic_coefficients
            )
            cached = homogenized_pair(generic, self.target)
            self._homogenized = cached
        start_h, target_h = cached
        y0 = np.concatenate([x, [1.0 + 0j]])
        y0 = y0 / np.linalg.norm(y0)
        patched = ProjectivePatchHomotopy(
            start_h,
            target_h,
            self.gamma,
            np.conj(y0),
            affine_target=self.target,
        )
        return patched, y0

    def _supports_arrays(self) -> List[np.ndarray]:
        """Recover the per-equation support arrays from the term tables."""
        out: List[np.ndarray] = []
        for i in range(self.target.neqs):
            sel = self._rows == i
            out.append(self._expos[self._cols[sel]])
        return out

    def __repr__(self) -> str:
        return (
            f"CoefficientHomotopy(dim={self.dim}, "
            f"nterms={len(self._rows)}, gamma={self.gamma:.4f})"
        )
