"""Localization patterns for maps of p-planes (paper §III-B, Fig 3).

A degree-q polynomial map ``X(s)`` of p-planes in C^{m+p} is stored in
*concatenated form*: the coefficient vectors of each column are stacked, so
row ``r`` (1-based) of the concatenated matrix holds the coefficient of
``s**((r-1) // (m+p))`` for ambient coordinate ``((r-1) % (m+p)) + 1``.

A **localization pattern** fixes which concatenated entries may be nonzero:
with the top pivots frozen to ``[1..p]`` (as in the paper's parallel
implementation), the pattern is determined by its bottom pivots
``b_1 < b_2 < ... < b_p``; column ``j`` is supported on rows ``j..b_j``.

Validity (paper's three conditions, §III-B):

1. writing ``q = q_hat * p + rho``, the first ``p - rho`` columns have
   dimension (cap) ``(q_hat + 1)(m + p)`` and the remaining ``rho`` columns
   ``(q_hat + 2)(m + p)``;
2. stars are contiguous within a column and both pivot sequences strictly
   increase — automatic here because ``b`` strictly increases and the top
   pivots are ``[1..p]``;
3. no two bottom pivots differ by ``m + p`` or more.

The trivial pattern ``[1..p]`` (level 0) pins a unique constant map; each
*increment* of one bottom pivot frees one more coefficient and lets the map
satisfy one more intersection condition.  The chain structure of these
increments is the Pieri poset/tree of :mod:`repro.schubert.poset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, List, Tuple

__all__ = ["PieriProblem", "LocalizationPattern"]


@dataclass(frozen=True)
class PieriProblem:
    """The (m, p, q) instance: m inputs, p outputs, q internal states.

    ``m`` is the dimension of the given general planes, ``p`` the dimension
    of the solution planes, and ``q`` the degree of the solution maps.  The
    number of intersection conditions (= problem dimension) is
    ``N = m*p + q*(m+p)`` and the generic number of solution maps is the
    combinatorial root count ``d(m, p, q)`` of :mod:`repro.schubert.poset`.
    """

    m: int
    p: int
    q: int = 0

    def __post_init__(self) -> None:
        if self.m < 1 or self.p < 1 or self.q < 0:
            raise ValueError("need m >= 1, p >= 1, q >= 0")

    @property
    def ambient(self) -> int:
        """Dimension of the ambient space, m + p."""
        return self.m + self.p

    @property
    def num_conditions(self) -> int:
        """N = m*p + q*(m+p): intersection conditions = free coefficients."""
        return self.m * self.p + self.q * self.ambient

    @cached_property
    def column_caps(self) -> Tuple[int, ...]:
        """Maximal bottom pivot per column (paper validity condition 1)."""
        q_hat, rho = divmod(self.q, self.p)
        caps = []
        for j in range(1, self.p + 1):
            blocks = (q_hat + 1) if j <= self.p - rho else (q_hat + 2)
            caps.append(blocks * self.ambient)
        return tuple(caps)

    @property
    def nrows(self) -> int:
        """Rows of the concatenated coefficient matrix (the largest cap)."""
        return max(self.column_caps)

    def trivial_pattern(self) -> "LocalizationPattern":
        return LocalizationPattern(self, tuple(range(1, self.p + 1)))

    def __str__(self) -> str:
        return f"(m={self.m}, p={self.p}, q={self.q})"


@dataclass(frozen=True)
class LocalizationPattern:
    """A valid bottom-pivot localization pattern for a Pieri problem."""

    problem: PieriProblem
    bottom_pivots: Tuple[int, ...]

    def __post_init__(self) -> None:
        b = tuple(int(x) for x in self.bottom_pivots)
        object.__setattr__(self, "bottom_pivots", b)
        ok, why = self._check(self.problem, b)
        if not ok:
            raise ValueError(f"invalid pattern {list(b)}: {why}")

    # ------------------------------------------------------------------
    @staticmethod
    def _check(problem: PieriProblem, b: Tuple[int, ...]) -> Tuple[bool, str]:
        p = problem.p
        if len(b) != p:
            return False, f"need {p} bottom pivots"
        caps = problem.column_caps
        for j in range(p):
            if b[j] < j + 1:
                return False, f"pivot {b[j]} above its top pivot {j + 1}"
            if b[j] > caps[j]:
                return False, f"pivot {b[j]} exceeds column cap {caps[j]}"
            if j and b[j] <= b[j - 1]:
                return False, "bottom pivots must strictly increase"
        if b[-1] - b[0] >= problem.ambient:
            return False, f"pivots differ by {problem.ambient} or more"
        return True, ""

    @classmethod
    def is_valid(cls, problem: PieriProblem, pivots) -> bool:
        return cls._check(problem, tuple(int(x) for x in pivots))[0]

    # ------------------------------------------------------------------
    @property
    def top_pivots(self) -> Tuple[int, ...]:
        """Fixed to [1..p] in this (and the paper's) implementation."""
        return tuple(range(1, self.problem.p + 1))

    @property
    def level(self) -> int:
        """Number of intersection conditions this pattern can satisfy.

        Equals the number of free coefficients once the p pivot entries are
        normalized to 1: ``sum_j (b_j - j)``.
        """
        return sum(b - (j + 1) for j, b in enumerate(self.bottom_pivots))

    @property
    def is_trivial(self) -> bool:
        return self.level == 0

    @property
    def is_root(self) -> bool:
        """True when no pivot can be incremented (the unique maximal pattern)."""
        return not any(True for _ in self.children())

    def column_degree(self, j: int) -> int:
        """Degree (in s) of column ``j`` (0-based): floor((b_j - 1)/(m+p))."""
        return (self.bottom_pivots[j] - 1) // self.problem.ambient

    def column_degrees(self) -> Tuple[int, ...]:
        return tuple(self.column_degree(j) for j in range(self.problem.p))

    def corner_rows(self) -> Tuple[int, ...]:
        """Ambient row (1-based) of each bottom pivot: ((b_j-1) mod (m+p)) + 1.

        These residues are pairwise distinct for a valid pattern — the fact
        behind the special-plane construction (see :func:`special_plane` in
        :mod:`repro.schubert.homotopy`).
        """
        amb = self.problem.ambient
        rows = tuple((b - 1) % amb + 1 for b in self.bottom_pivots)
        assert len(set(rows)) == len(rows), "corner rows must be distinct"
        return rows

    def support(self) -> List[Tuple[int, int]]:
        """All (row, column) star positions, 1-based, concatenated rows."""
        out = []
        for j, b in enumerate(self.bottom_pivots, start=1):
            out.extend((r, j) for r in range(j, b + 1))
        return out

    def star_count(self) -> int:
        """Number of stars: level + p (p pivots are normalized away)."""
        return self.level + self.problem.p

    # ------------------------------------------------------------------
    def children(self) -> Iterator[Tuple[int, "LocalizationPattern"]]:
        """All valid single-pivot increments ``(column, new pattern)``.

        In the Pieri tree these are the children of this node; each child
        satisfies one more intersection condition.  Columns are 0-based.
        """
        b = self.bottom_pivots
        for j in range(self.problem.p):
            cand = list(b)
            cand[j] += 1
            cand_t = tuple(cand)
            if self._check(self.problem, cand_t)[0]:
                yield j, LocalizationPattern(self.problem, cand_t)

    def parents(self) -> Iterator[Tuple[int, "LocalizationPattern"]]:
        """All valid single-pivot decrements (poset edges pointing down)."""
        b = self.bottom_pivots
        for j in range(self.problem.p):
            cand = list(b)
            cand[j] -= 1
            cand_t = tuple(cand)
            if self._check(self.problem, cand_t)[0]:
                yield j, LocalizationPattern(self.problem, cand_t)

    def child_via(self, column: int) -> "LocalizationPattern":
        """Increment pivot of ``column`` (0-based), validating the result."""
        cand = list(self.bottom_pivots)
        cand[column] += 1
        return LocalizationPattern(self.problem, tuple(cand))

    # ------------------------------------------------------------------
    def shorthand(self) -> str:
        """The paper's bracket notation, e.g. ``[4 7]``."""
        return "[" + " ".join(str(b) for b in self.bottom_pivots) + "]"

    def ascii_art(self) -> str:
        """Render the concatenated pattern as in Fig 3 (stars and dots)."""
        amb = self.problem.ambient
        rows = self.problem.nrows
        grid = [["." for _ in range(self.problem.p)] for _ in range(rows)]
        for r, j in self.support():
            grid[r - 1][j - 1] = "*"
        lines = []
        for r in range(rows):
            if r and r % amb == 0:
                lines.append("-" * (2 * self.problem.p - 1))
            lines.append(" ".join(grid[r]))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.shorthand()
