"""The Pieri poset and the combinatorial root count (paper §III-C, Fig 4).

Nodes are localization patterns; edges increment one bottom pivot.  The
number of solution maps fitting a pattern and meeting ``level`` general
planes equals the number of increment-chains from the trivial pattern —
computed here by dynamic programming over levels.  ``d(m, p, q)`` is that
count at the unique maximal ("root") pattern; for q = 0 it reduces to the
degree of the Grassmannian Gr(p, m+p) (2, 5, 42, 462, 24024, ... for the
paper's Table IV cells).

The DP also yields the paper's Table III directly: the number of
path-tracking jobs at tree level ``n`` equals the sum over level-``n``
patterns of their chain counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .patterns import LocalizationPattern, PieriProblem

__all__ = ["PieriPoset", "pieri_root_count", "level_job_counts"]


@dataclass
class PieriPoset:
    """The full poset of valid patterns for one (m, p, q) problem.

    ``levels[n]`` maps each level-``n`` pattern to the number of increment
    chains from the trivial pattern (= solution maps fitting it that meet
    ``n`` general planes, by the Pieri homotopy induction).
    """

    problem: PieriProblem
    levels: List[Dict[LocalizationPattern, int]] = field(default_factory=list)

    @classmethod
    def build(cls, problem: PieriProblem) -> "PieriPoset":
        trivial = problem.trivial_pattern()
        levels: List[Dict[LocalizationPattern, int]] = [{trivial: 1}]
        for n in range(problem.num_conditions):
            nxt: Dict[LocalizationPattern, int] = {}
            for pattern, count in levels[n].items():
                for _, child in pattern.children():
                    nxt[child] = nxt.get(child, 0) + count
            if not nxt:
                break
            levels.append(nxt)
        return cls(problem, levels)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of levels with nodes (== num_conditions + 1 generically)."""
        return len(self.levels)

    def root(self) -> LocalizationPattern:
        """The unique maximal pattern (level N)."""
        top = self.levels[-1]
        if len(top) != 1:
            raise RuntimeError(
                f"expected a unique maximal pattern, found {len(top)}"
            )
        (pattern,) = top.keys()
        return pattern

    def root_count(self) -> int:
        """d(m, p, q): the generic number of solution maps."""
        if len(self.levels) != self.problem.num_conditions + 1:
            raise RuntimeError("poset does not reach the expected depth")
        return self.levels[-1][self.root()]

    def node_count(self) -> int:
        return sum(len(lv) for lv in self.levels)

    def job_counts(self) -> List[int]:
        """Paths tracked per level (Table III): job_counts()[n-1] for level n.

        Every chain into a level-``n`` node is one Pieri-homotopy path, so
        the count at level ``n`` is the sum of chain counts over the nodes.
        """
        return [sum(lv.values()) for lv in self.levels[1:]]

    def total_paths(self) -> int:
        """Total path-tracking jobs over all levels (Table III's bottom row)."""
        return sum(self.job_counts())

    def patterns_at(self, n: int) -> List[LocalizationPattern]:
        return list(self.levels[n].keys())

    # ------------------------------------------------------------------
    def ascii_art(self, max_width: int = 78) -> str:
        """Render the poset level by level as in Fig 4."""
        lines = []
        for n, lv in enumerate(self.levels):
            entries = " ".join(
                f"{pat.shorthand()}:{cnt}" for pat, cnt in sorted(
                    lv.items(), key=lambda kv: kv[0].bottom_pivots
                )
            )
            if len(entries) > max_width:
                entries = entries[: max_width - 3] + "..."
            lines.append(f"level {n:2d} | {entries}")
        return "\n".join(lines)


def pieri_root_count(m: int, p: int, q: int = 0) -> int:
    """The number d(m, p, q) of feedback laws (paper's Table IV counts)."""
    return PieriPoset.build(PieriProblem(m, p, q)).root_count()


def level_job_counts(m: int, p: int, q: int = 0) -> List[int]:
    """Jobs per tree level, the '#paths' column of the paper's Table III."""
    return PieriPoset.build(PieriProblem(m, p, q)).job_counts()
