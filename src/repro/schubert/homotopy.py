"""The Pieri homotopy: determinant intersection conditions and the moving
special plane (paper §III-B, equation (3)).

Solutions are stored as *concatenated coefficient matrices*: a complex
matrix ``C`` of shape ``(nrows, p)`` whose row ``r`` (0-based) holds the
coefficient of ``s**(r // (m+p))`` for ambient coordinate ``r % (m+p)`` of a
column.  A matrix *fits* a localization pattern when it vanishes outside the
pattern's support; the **standard chart** normalizes every bottom-pivot
entry to 1.

The map is evaluated with per-column homogenization: column ``j`` of

    X(s, s0)[i, j] = sum_l C[l*(m+p) + i, j] * s**l * s0**(L_j - l)

has degree ``L_j = floor((b_j - 1)/(m+p))``, and the intersection condition
"X meets the m-plane K at s" is the single equation ``det [X(s,1) | K] = 0``.

**The special plane.**  For a pattern with bottom pivots ``b``, the corner
rows ``i_j = ((b_j - 1) mod (m+p)) + 1`` are pairwise distinct, and
``special_plane`` spans the standard basis vectors of the *other* m ambient
rows.  Expanding the determinant then gives the identity

    det [X(s, 0) | K_b]  =  +/- s**(sum L_j) * prod_j C[b_j, j],

i.e. the map meets ``K_b`` at infinity iff one of its bottommost entries is
zero (the paper's key lemma) — so a child solution, embedded with its new
star equal to zero, is an *exact and regular* start point.

**The homotopy per tree edge** (equation (3)): with the first ``n-1``
conditions held fixed, move the interpolation point from infinity to
``s_n`` and the plane from ``K_b`` to ``K_n`` along gamma-twisted paths

    s(t) = (1-t) gamma_s + t s_n,   s0(t) = t,
    K(t) = (1-t) gamma_k K_b + t K_n,

and track the n free coefficients (the chart pins the child's pivot, not
the parent's, because the new star starts at zero).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..linalg import batched_det
from ..tracker import BatchHomotopy, HomotopyFunction
from ..tracker.interface import _per_path_t
from .patterns import LocalizationPattern

__all__ = [
    "special_plane",
    "trivial_solution_matrix",
    "evaluate_map",
    "intersection_residuals",
    "normalize_to_standard_chart",
    "PieriEdgeHomotopy",
]


def trivial_solution_matrix(pattern_or_problem) -> np.ndarray:
    """The unique matrix fitting the trivial pattern (identity top block)."""
    problem = getattr(pattern_or_problem, "problem", pattern_or_problem)
    c = np.zeros((problem.nrows, problem.p), dtype=complex)
    for j in range(problem.p):
        c[j, j] = 1.0
    return c


def special_plane(pattern: LocalizationPattern) -> np.ndarray:
    """K_b: the span of the m standard basis vectors avoiding the corners."""
    amb = pattern.problem.ambient
    corners = {r - 1 for r in pattern.corner_rows()}  # 0-based
    rows = [r for r in range(amb) if r not in corners]
    k = np.zeros((amb, pattern.problem.m), dtype=complex)
    for col, r in enumerate(rows):
        k[r, col] = 1.0
    return k


def evaluate_map(
    c: np.ndarray,
    pattern: LocalizationPattern,
    s: complex,
    s0: complex = 1.0,
) -> np.ndarray:
    """X(s, s0): the (m+p) x p matrix of the homogenized map."""
    amb = pattern.problem.ambient
    p = pattern.problem.p
    x = np.zeros((amb, p), dtype=complex)
    for j in range(p):
        lj = pattern.column_degree(j)
        for l in range(lj + 1):
            weight = (s**l) * (s0 ** (lj - l))
            block = c[l * amb : (l + 1) * amb, j]
            x[:, j] += block * weight
    return x


def intersection_residuals(
    c: np.ndarray,
    pattern: LocalizationPattern,
    planes: Sequence[np.ndarray],
    points: Sequence[complex],
) -> np.ndarray:
    """det [X(s_i, 1) | K_i] for every given condition (verification)."""
    out = np.empty(len(planes), dtype=complex)
    for i, (k, s) in enumerate(zip(planes, points)):
        m = np.hstack([evaluate_map(c, pattern, s, 1.0), k])
        out[i] = np.linalg.det(m)
    return out


def normalize_to_standard_chart(
    c: np.ndarray, pattern: LocalizationPattern
) -> np.ndarray:
    """Scale each column so its bottom-pivot entry equals 1."""
    amb = pattern.problem.ambient
    out = c.copy()
    for j, b in enumerate(pattern.bottom_pivots):
        pivot = out[b - 1, j]
        if pivot == 0:
            raise ZeroDivisionError(
                f"bottom pivot of column {j} is zero; solution fits a child "
                "pattern (non-generic input)"
            )
        out[:, j] /= pivot
    return out


class PieriEdgeHomotopy(HomotopyFunction, BatchHomotopy):
    """The square homotopy tracked along one Pieri-tree edge.

    Implements *both* tracker protocols: the scalar
    :class:`~repro.tracker.HomotopyFunction` (one point, one t) and the
    structure-of-arrays :class:`~repro.tracker.BatchHomotopy` (N points,
    each at its own t).  All determinant work — condition-matrix
    assembly, the cofactor stacks behind residuals and Jacobians — is
    vectorized with a leading *path* axis, and the scalar methods run
    through the batched kernels as one-row batches, so scalar and
    batched tracking see bit-identical arithmetic.  Many edges of one
    tree level (same ``dim``, different patterns and gammas) combine
    into one front via :class:`~repro.tracker.StackedHomotopy`.

    Parameters
    ----------
    pattern:
        The *parent* pattern (level n) whose solutions are computed.
    jstar:
        The column (0-based) whose bottom pivot was incremented; the new
        star starts at zero and the chart pins the child's pivot instead.
    planes, points:
        The first ``n`` intersection conditions; the last one is the moving
        condition, the first ``n - 1`` are held fixed.
    gamma_s, gamma_k:
        Random nonzero complex twists for the point and plane paths (the
        gamma trick).  Supply explicitly for reproducible runs.
    pin_row:
        0-based concatenated row of column ``jstar`` pinned to 1 by the
        chart.  Defaults to the child's pivot row (the only entry known to
        be nonzero at t = 0).  Because the determinant conditions are
        invariant under column scaling, re-pinning tracks the *same*
        geometric path in different coordinates — used to continue paths
        that leave the default chart (apparent divergence).
    """

    def __init__(
        self,
        pattern: LocalizationPattern,
        jstar: int,
        planes: Sequence[np.ndarray],
        points: Sequence[complex],
        gamma_s: complex | None = None,
        gamma_k: complex | None = None,
        rng: np.random.Generator | None = None,
        pin_row: int | None = None,
    ) -> None:
        problem = pattern.problem
        n = pattern.level
        if len(planes) != n or len(points) != n:
            raise ValueError(f"level-{n} pattern needs exactly {n} conditions")
        if not 0 <= jstar < problem.p:
            raise ValueError("jstar out of range")
        rng = np.random.default_rng() if rng is None else rng
        if gamma_s is None:
            gamma_s = np.exp(2j * np.pi * rng.random())
        if gamma_k is None:
            gamma_k = np.exp(2j * np.pi * rng.random())
        if gamma_s == 0 or gamma_k == 0:
            raise ValueError("gamma twists must be nonzero")

        self.pattern = pattern
        self.problem = problem
        self.jstar = int(jstar)
        self.planes = [np.asarray(k, dtype=complex) for k in planes]
        self.points = [complex(s) for s in points]
        self.gamma_s = complex(gamma_s)
        self.gamma_k = complex(gamma_k)
        self.k_special = special_plane(pattern)

        amb = problem.ambient
        b = pattern.bottom_pivots
        # chart: pin pivots of all columns except jstar at the parent's
        # bottom pivot; for jstar pin the *child's* pivot (one row up) by
        # default, or the caller-supplied pin_row after a chart switch.
        if pin_row is None:
            pin_row = b[self.jstar] - 2  # child pivot, 0-based
        else:
            support_rows = {
                r - 1 for r, j in pattern.support() if j - 1 == self.jstar
            }
            if pin_row not in support_rows:
                raise ValueError(
                    f"pin_row {pin_row} outside column {self.jstar} support"
                )
        self.pin_row = int(pin_row)
        fixed: List[Tuple[int, int]] = []
        for j in range(problem.p):
            row = self.pin_row if j == self.jstar else b[j] - 1  # 0-based
            fixed.append((row, j))
        self._fixed = set(fixed)
        free: List[Tuple[int, int]] = []
        for r1, j1 in pattern.support():
            pos = (r1 - 1, j1 - 1)
            if pos not in self._fixed:
                free.append(pos)
        free.sort()
        self._free = free
        if len(free) != n:
            raise AssertionError(
                f"chart has {len(free)} free entries, expected {n}"
            )
        self._col_degrees = pattern.column_degrees()
        self._amb = amb

        # scatter/gather index tables shared by the scalar and batched
        # chart maps (to_matrix / to_matrix_batch)
        self._fixed_rows = np.array([r for r, _ in fixed], dtype=np.int64)
        self._fixed_cols = np.array([j for _, j in fixed], dtype=np.int64)
        self._free_rows = np.array([r for r, _ in free], dtype=np.int64)
        self._free_cols = np.array([j for _, j in free], dtype=np.int64)

        # --- precomputed tables for the batched evaluator -------------
        # free-variable decomposition: concatenated row r = l*amb + i_amb
        self._free_l = np.array([r // amb for r, _ in free], dtype=np.int64)
        self._free_i = np.array([r % amb for r, _ in free], dtype=np.int64)
        self._free_j = np.array([j for _, j in free], dtype=np.int64)
        # the Jacobian gather only reads cofactors at the free variables'
        # (ambient row, column) positions — usually far fewer than amb^2,
        # so their minors are enumerated explicitly instead of computing
        # whole cofactor matrices
        pos = sorted(set(zip(self._free_i.tolist(), self._free_j.tolist())))
        self._pos_of_free = np.array(
            [pos.index((r, c)) for r, c in zip(self._free_i, self._free_j)],
            dtype=np.int64,
        )
        idx0 = np.arange(amb)
        self._pos_rows = np.array(
            [np.delete(idx0, r) for r, _ in pos], dtype=np.int64
        )[:, :, None]  # (npos, amb-1, 1)
        self._pos_cols = np.array(
            [np.delete(idx0, c) for _, c in pos], dtype=np.int64
        )[:, None, :]  # (npos, 1, amb-1)
        self._pos_signs = np.array(
            [(-1.0) ** (r + c) for r, c in pos]
        )
        self._free_lj = np.array(
            [self._col_degrees[j] for _, j in free], dtype=np.int64
        )
        # static condition weights: d det_i / d x_k = cof_i[i_amb, j] * w
        # with w = s_i^l * 1^(L_j - l), independent of x and t
        n = len(free)
        self._static_weights = np.empty((max(n - 1, 0), n), dtype=complex)
        for i in range(n - 1):
            self._static_weights[i] = np.asarray(self.points[i]) ** self._free_l
        # batched-minor index tables for the cofactor stack
        idx = np.arange(amb)
        keep = np.array([np.delete(idx, i) for i in range(amb)])
        self._minor_rows = keep[:, None, :, None]  # (amb, 1, amb-1, 1)
        self._minor_cols = keep[None, :, None, :]  # (1, amb, 1, amb-1)
        self._minor_signs = (-1.0) ** np.add.outer(idx, idx)
        # static X(s_i, 1) assembly: X_i = sum_l s_i^l * C_block_l, valid
        # because coefficients above a column's degree are zero by pattern
        self._n_blocks = problem.nrows // amb
        if n > 1:
            self._spow = np.empty((n - 1, self._n_blocks), dtype=complex)
            for i in range(n - 1):
                self._spow[i] = np.asarray(self.points[i]) ** np.arange(
                    self._n_blocks
                )
            self._k_stack = np.stack(self.planes[: n - 1])
        else:
            self._spow = np.empty((0, self._n_blocks), dtype=complex)
            self._k_stack = np.empty((0, amb, problem.m), dtype=complex)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self._free)

    def to_matrix(self, x: np.ndarray) -> np.ndarray:
        """Scatter the unknown vector into a concatenated matrix."""
        return self.to_matrix_batch(np.asarray(x, dtype=complex)[None, :])[0]

    def to_matrix_batch(self, X: np.ndarray) -> np.ndarray:
        """Scatter a stack of unknown vectors, shape (npaths, nrows, p)."""
        X = np.asarray(X, dtype=complex)
        if X.ndim != 2 or X.shape[1] != self.dim:
            raise ValueError(f"expected X of shape (npaths, {self.dim})")
        c = np.zeros(
            (X.shape[0], self.problem.nrows, self.problem.p), dtype=complex
        )
        c[:, self._fixed_rows, self._fixed_cols] = 1.0
        c[:, self._free_rows, self._free_cols] = X
        return c

    def from_matrix(self, c: np.ndarray) -> np.ndarray:
        """Gather the unknown vector from a matrix in this chart."""
        for row, j in self._fixed:
            if abs(c[row, j] - 1.0) > 1e-8:
                raise ValueError("matrix is not in this homotopy's chart")
        return np.array([c[row, j] for row, j in self._free], dtype=complex)

    def start_vector(self, child_matrix: np.ndarray) -> np.ndarray:
        """Embed a child solution (standard chart) as the start unknowns.

        The child matrix vanishes at the new star position, so gathering
        the parent chart's free entries automatically sets it to zero.
        """
        return np.array(
            [child_matrix[row, j] for row, j in self._free], dtype=complex
        )

    # ------------------------------------------------------------------
    # Batched kernels: everything carries a leading path axis.  The
    # scalar HomotopyFunction methods below run through these as one-row
    # batches, so scalar and batched tracking share every rounding.
    # ------------------------------------------------------------------
    def _moving_paths(
        self, tt: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-path moving point, homogenizer and plane: s(t), s0(t), K(t)."""
        s = (1.0 - tt) * self.gamma_s + tt * self.points[-1]
        s0 = tt.astype(complex)
        k = (1.0 - tt)[:, None, None] * (self.gamma_k * self.k_special) + tt[
            :, None, None
        ] * self.planes[-1]
        return s, s0, k

    def _moving_condition_matrix(
        self, blocks: np.ndarray, s: np.ndarray, s0: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """The moving condition matrix [X(s, s0) | K(t)] per path.

        ``blocks`` is the concatenated matrix reshaped to
        ``(npaths, n_blocks, amb, p)``; each column is homogenized with
        its own degree, every path with its own (s, s0).
        """
        amb, p = self._amb, self.problem.p
        m = np.empty((blocks.shape[0], amb, amb), dtype=complex)
        for j in range(p):
            lj = self._col_degrees[j]
            ls = np.arange(lj + 1)
            w = (s[:, None] ** ls) * (s0[:, None] ** (lj - ls))
            m[:, :, j] = np.einsum("pl,pla->pa", w, blocks[:, : lj + 1, :, j])
        m[:, :, p:] = k
        return m

    def _all_condition_matrices(self, c: np.ndarray, tt: np.ndarray):
        """All n condition matrices per path, (npaths, n, amb, amb).

        Static rows are assembled in one einsum over the degree blocks of
        the concatenated matrices (entries above a column's degree vanish
        by the pattern, so no per-column masking is needed at s0 = 1);
        the moving row's weights depend on each path's own t.  Also
        returns the per-path ``(s, s0)`` vectors.
        """
        npaths = c.shape[0]
        n = self.dim
        amb = self._amb
        p = self.problem.p
        blocks = c.reshape(npaths, self._n_blocks, amb, p)
        mats = np.empty((npaths, n, amb, amb), dtype=complex)
        if n > 1:
            mats[:, : n - 1, :, :p] = np.einsum(
                "cl,plar->pcar", self._spow, blocks
            )
            mats[:, : n - 1, :, p:] = self._k_stack
        s, s0, k = self._moving_paths(tt)
        mats[:, n - 1] = self._moving_condition_matrix(blocks, s, s0, k)
        return mats, s, s0

    def _batched_cofactors(self, mats: np.ndarray) -> np.ndarray:
        """Cofactor matrices of a ``(..., amb, amb)`` stack, one det call.

        Works for any leading axes — per-condition stacks and per-path ×
        per-condition stacks alike.  For amb = 1 the cofactor is 1 by
        convention.
        """
        amb = mats.shape[-1]
        lead = mats.shape[:-2]
        if amb == 1:
            return np.ones(lead + (1, 1), dtype=complex)
        minors = mats[..., self._minor_rows, self._minor_cols]
        dets = batched_det(minors.reshape(-1, amb - 1, amb - 1))
        return self._minor_signs * dets.reshape(lead + (amb, amb))

    def _free_cofactors(self, mats: np.ndarray) -> np.ndarray:
        """Cofactor entries at the free variables' positions only.

        The Jacobian gather reads at most ``dim`` distinct cofactor
        positions per condition matrix, so only those minors are
        determinant-ed — the dominant cost of the batched evaluator,
        cut from ``amb**2`` dets per matrix to ``npos <= dim``.
        Returns ``(..., npos)``; expand to free variables with
        ``[..., self._pos_of_free]``.
        """
        amb = mats.shape[-1]
        if amb == 1:
            return np.ones(
                mats.shape[:-2] + (len(self._pos_signs),), dtype=complex
            )
        minors = mats[..., self._pos_rows, self._pos_cols]
        return self._pos_signs * batched_det(minors)

    def _moving_dmatrix(
        self, blocks: np.ndarray, s: np.ndarray, s0: np.ndarray
    ) -> np.ndarray:
        """d/dt of the moving condition matrix per path (chain rule)."""
        amb, p = self._amb, self.problem.p
        npaths = blocks.shape[0]
        ds = self.points[-1] - self.gamma_s
        dm = np.zeros((npaths, amb, amb), dtype=complex)
        # X block: chain rule through s(t), s0(t) per coefficient (ds0 = 1)
        for j in range(p):
            lj = self._col_degrees[j]
            for l in range(lj + 1):
                dw = np.zeros(npaths, dtype=complex)
                if l > 0:
                    dw += l * (s ** (l - 1)) * (s0 ** (lj - l)) * ds
                if lj - l > 0:
                    dw += (lj - l) * (s0 ** (lj - l - 1)) * (s**l)
                dm[:, :, j] += blocks[:, l, :, j] * dw[:, None]
        # K block: d/dt [(1-t) gamma_k K_b + t K_n]
        dm[:, :, p:] = self.planes[-1] - self.gamma_k * self.k_special
        return dm

    # ------------------------------------------------------------------
    # BatchHomotopy protocol
    # ------------------------------------------------------------------
    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        mats, _, _ = self._all_condition_matrices(self.to_matrix_batch(X), tt)
        return batched_det(mats)

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(X, t)[1]

    def _jacobian_from(self, gathered, s, s0):
        """Scale gathered cofactors by the homogenization weights.

        Row i of a path's Jacobian is d det(M_i)/d x_k =
        cof_i[i_amb(k), j(k)] times the weight s^l * s0^(L_j - l);
        static rows' weights were precomputed at construction, the
        moving row's depend on each path's t only.
        """
        n = self.dim
        jac = np.empty(gathered.shape[:1] + (n, n), dtype=complex)
        if n > 1:
            jac[:, : n - 1] = gathered[:, : n - 1] * self._static_weights
        moving_w = (s[:, None] ** self._free_l) * (
            s0[:, None] ** (self._free_lj - self._free_l)
        )
        jac[:, n - 1] = gathered[:, n - 1] * moving_w
        return jac

    def evaluate_and_jacobian_batch(self, X, t):
        """Residuals and Jacobians of the whole stack in batched calls.

        Residuals are one batched determinant over every path's
        condition matrices (exactly :meth:`evaluate_batch`); the
        gradient gathers only the cofactor entries the free variables
        sit at (see :meth:`_free_cofactors`).
        """
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        c = self.to_matrix_batch(X)
        mats, s, s0 = self._all_condition_matrices(c, tt)
        res = batched_det(mats)
        gathered = self._free_cofactors(mats)[..., self._pos_of_free]
        return res, self._jacobian_from(gathered, s, s0)

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        """Only the moving condition depends on t."""
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        c = self.to_matrix_batch(X)
        blocks = c.reshape(X.shape[0], self._n_blocks, self._amb, self.problem.p)
        s, s0, k = self._moving_paths(tt)
        cofs = self._batched_cofactors(
            self._moving_condition_matrix(blocks, s, s0, k)
        )
        out = np.zeros((X.shape[0], self.dim), dtype=complex)
        out[:, -1] = np.einsum("pab,pab->p", cofs, self._moving_dmatrix(blocks, s, s0))
        return out

    def jacobians_batch(self, X, t):
        """dH/dx and dH/dt from one condition-matrix assembly.

        The tangent predictor needs both; only the moving condition
        depends on t, so its (and only its) full cofactor matrix is
        computed for the t-derivative.
        """
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        c = self.to_matrix_batch(X)
        mats, s, s0 = self._all_condition_matrices(c, tt)
        gathered = self._free_cofactors(mats)[..., self._pos_of_free]
        jac = self._jacobian_from(gathered, s, s0)
        blocks = c.reshape(X.shape[0], self._n_blocks, self._amb, self.problem.p)
        cofs_mov = self._batched_cofactors(mats[:, -1])
        jt = np.zeros((X.shape[0], self.dim), dtype=complex)
        jt[:, -1] = np.einsum(
            "pab,pab->p", cofs_mov, self._moving_dmatrix(blocks, s, s0)
        )
        return jac, jt

    # ------------------------------------------------------------------
    # Scalar HomotopyFunction protocol: one-row batches, same arithmetic
    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_and_jacobian_x(x, t)[1]

    def evaluate_and_jacobian_x(self, x, t):
        res, jac = self.evaluate_and_jacobian_batch(
            np.asarray(x, dtype=complex)[None, :], t
        )
        return res[0], jac[0]

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.jacobian_t_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    # ------------------------------------------------------------------
    # tracker-level rescue hook (see repro.tracker.rescue)
    # ------------------------------------------------------------------
    def rescale_patch(self, x: np.ndarray, t: float):
        """Re-pin the chart of an apparently divergent path, if useful.

        Large coordinates usually mean the path left the affine chart
        (the pinned entry of the moving column tends to zero), not that
        the solution is at infinity: the determinant conditions are
        invariant under column scaling, so the currently largest entry
        of column ``jstar`` becomes the new pin.  Returns
        ``(new_homotopy, new_x)`` — the same geometric path in the
        re-pinned chart, with identical gamma twists so the per-node
        start/endpoint bijection is preserved — or ``None`` when no
        switch applies (no progress made, already in the best chart, or
        a zero candidate pivot).
        """
        if t <= 0.0 or t >= 1.0:
            return None
        c = self.to_matrix(np.asarray(x, dtype=complex))
        col_rows = [
            r - 1 for r, j in self.pattern.support() if j - 1 == self.jstar
        ]
        values = np.abs(c[col_rows, self.jstar])
        pin_row = col_rows[int(np.argmax(values))]
        if pin_row == self.pin_row or c[pin_row, self.jstar] == 0:
            return None
        c = c.copy()
        c[:, self.jstar] /= c[pin_row, self.jstar]
        new_hom = PieriEdgeHomotopy(
            self.pattern,
            self.jstar,
            self.planes,
            self.points,
            gamma_s=self.gamma_s,
            gamma_k=self.gamma_k,
            pin_row=pin_row,
        )
        return new_hom, new_hom.from_matrix(c)

    def __repr__(self) -> str:
        return (
            f"PieriEdgeHomotopy(pattern={self.pattern.shorthand()}, "
            f"jstar={self.jstar}, dim={self.dim})"
        )
