"""The Pieri homotopy: determinant intersection conditions and the moving
special plane (paper §III-B, equation (3)).

Solutions are stored as *concatenated coefficient matrices*: a complex
matrix ``C`` of shape ``(nrows, p)`` whose row ``r`` (0-based) holds the
coefficient of ``s**(r // (m+p))`` for ambient coordinate ``r % (m+p)`` of a
column.  A matrix *fits* a localization pattern when it vanishes outside the
pattern's support; the **standard chart** normalizes every bottom-pivot
entry to 1.

The map is evaluated with per-column homogenization: column ``j`` of

    X(s, s0)[i, j] = sum_l C[l*(m+p) + i, j] * s**l * s0**(L_j - l)

has degree ``L_j = floor((b_j - 1)/(m+p))``, and the intersection condition
"X meets the m-plane K at s" is the single equation ``det [X(s,1) | K] = 0``.

**The special plane.**  For a pattern with bottom pivots ``b``, the corner
rows ``i_j = ((b_j - 1) mod (m+p)) + 1`` are pairwise distinct, and
``special_plane`` spans the standard basis vectors of the *other* m ambient
rows.  Expanding the determinant then gives the identity

    det [X(s, 0) | K_b]  =  +/- s**(sum L_j) * prod_j C[b_j, j],

i.e. the map meets ``K_b`` at infinity iff one of its bottommost entries is
zero (the paper's key lemma) — so a child solution, embedded with its new
star equal to zero, is an *exact and regular* start point.

**The homotopy per tree edge** (equation (3)): with the first ``n-1``
conditions held fixed, move the interpolation point from infinity to
``s_n`` and the plane from ``K_b`` to ``K_n`` along gamma-twisted paths

    s(t) = (1-t) gamma_s + t s_n,   s0(t) = t,
    K(t) = (1-t) gamma_k K_b + t K_n,

and track the n free coefficients (the chart pins the child's pivot, not
the parent's, because the new star starts at zero).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..linalg import cofactor_matrix
from ..tracker import HomotopyFunction
from .patterns import LocalizationPattern

__all__ = [
    "special_plane",
    "trivial_solution_matrix",
    "evaluate_map",
    "intersection_residuals",
    "normalize_to_standard_chart",
    "PieriEdgeHomotopy",
]


def trivial_solution_matrix(pattern_or_problem) -> np.ndarray:
    """The unique matrix fitting the trivial pattern (identity top block)."""
    problem = getattr(pattern_or_problem, "problem", pattern_or_problem)
    c = np.zeros((problem.nrows, problem.p), dtype=complex)
    for j in range(problem.p):
        c[j, j] = 1.0
    return c


def special_plane(pattern: LocalizationPattern) -> np.ndarray:
    """K_b: the span of the m standard basis vectors avoiding the corners."""
    amb = pattern.problem.ambient
    corners = {r - 1 for r in pattern.corner_rows()}  # 0-based
    rows = [r for r in range(amb) if r not in corners]
    k = np.zeros((amb, pattern.problem.m), dtype=complex)
    for col, r in enumerate(rows):
        k[r, col] = 1.0
    return k


def evaluate_map(
    c: np.ndarray,
    pattern: LocalizationPattern,
    s: complex,
    s0: complex = 1.0,
) -> np.ndarray:
    """X(s, s0): the (m+p) x p matrix of the homogenized map."""
    amb = pattern.problem.ambient
    p = pattern.problem.p
    x = np.zeros((amb, p), dtype=complex)
    for j in range(p):
        lj = pattern.column_degree(j)
        for l in range(lj + 1):
            weight = (s**l) * (s0 ** (lj - l))
            block = c[l * amb : (l + 1) * amb, j]
            x[:, j] += block * weight
    return x


def intersection_residuals(
    c: np.ndarray,
    pattern: LocalizationPattern,
    planes: Sequence[np.ndarray],
    points: Sequence[complex],
) -> np.ndarray:
    """det [X(s_i, 1) | K_i] for every given condition (verification)."""
    out = np.empty(len(planes), dtype=complex)
    for i, (k, s) in enumerate(zip(planes, points)):
        m = np.hstack([evaluate_map(c, pattern, s, 1.0), k])
        out[i] = np.linalg.det(m)
    return out


def normalize_to_standard_chart(
    c: np.ndarray, pattern: LocalizationPattern
) -> np.ndarray:
    """Scale each column so its bottom-pivot entry equals 1."""
    amb = pattern.problem.ambient
    out = c.copy()
    for j, b in enumerate(pattern.bottom_pivots):
        pivot = out[b - 1, j]
        if pivot == 0:
            raise ZeroDivisionError(
                f"bottom pivot of column {j} is zero; solution fits a child "
                "pattern (non-generic input)"
            )
        out[:, j] /= pivot
    return out


class PieriEdgeHomotopy(HomotopyFunction):
    """The square homotopy tracked along one Pieri-tree edge.

    Parameters
    ----------
    pattern:
        The *parent* pattern (level n) whose solutions are computed.
    jstar:
        The column (0-based) whose bottom pivot was incremented; the new
        star starts at zero and the chart pins the child's pivot instead.
    planes, points:
        The first ``n`` intersection conditions; the last one is the moving
        condition, the first ``n - 1`` are held fixed.
    gamma_s, gamma_k:
        Random nonzero complex twists for the point and plane paths (the
        gamma trick).  Supply explicitly for reproducible runs.
    pin_row:
        0-based concatenated row of column ``jstar`` pinned to 1 by the
        chart.  Defaults to the child's pivot row (the only entry known to
        be nonzero at t = 0).  Because the determinant conditions are
        invariant under column scaling, re-pinning tracks the *same*
        geometric path in different coordinates — used to continue paths
        that leave the default chart (apparent divergence).
    """

    def __init__(
        self,
        pattern: LocalizationPattern,
        jstar: int,
        planes: Sequence[np.ndarray],
        points: Sequence[complex],
        gamma_s: complex | None = None,
        gamma_k: complex | None = None,
        rng: np.random.Generator | None = None,
        pin_row: int | None = None,
    ) -> None:
        problem = pattern.problem
        n = pattern.level
        if len(planes) != n or len(points) != n:
            raise ValueError(f"level-{n} pattern needs exactly {n} conditions")
        if not 0 <= jstar < problem.p:
            raise ValueError("jstar out of range")
        rng = np.random.default_rng() if rng is None else rng
        if gamma_s is None:
            gamma_s = np.exp(2j * np.pi * rng.random())
        if gamma_k is None:
            gamma_k = np.exp(2j * np.pi * rng.random())
        if gamma_s == 0 or gamma_k == 0:
            raise ValueError("gamma twists must be nonzero")

        self.pattern = pattern
        self.problem = problem
        self.jstar = int(jstar)
        self.planes = [np.asarray(k, dtype=complex) for k in planes]
        self.points = [complex(s) for s in points]
        self.gamma_s = complex(gamma_s)
        self.gamma_k = complex(gamma_k)
        self.k_special = special_plane(pattern)

        amb = problem.ambient
        b = pattern.bottom_pivots
        # chart: pin pivots of all columns except jstar at the parent's
        # bottom pivot; for jstar pin the *child's* pivot (one row up) by
        # default, or the caller-supplied pin_row after a chart switch.
        if pin_row is None:
            pin_row = b[self.jstar] - 2  # child pivot, 0-based
        else:
            support_rows = {
                r - 1 for r, j in pattern.support() if j - 1 == self.jstar
            }
            if pin_row not in support_rows:
                raise ValueError(
                    f"pin_row {pin_row} outside column {self.jstar} support"
                )
        self.pin_row = int(pin_row)
        fixed: List[Tuple[int, int]] = []
        for j in range(problem.p):
            row = self.pin_row if j == self.jstar else b[j] - 1  # 0-based
            fixed.append((row, j))
        self._fixed = set(fixed)
        free: List[Tuple[int, int]] = []
        for r1, j1 in pattern.support():
            pos = (r1 - 1, j1 - 1)
            if pos not in self._fixed:
                free.append(pos)
        free.sort()
        self._free = free
        if len(free) != n:
            raise AssertionError(
                f"chart has {len(free)} free entries, expected {n}"
            )
        self._col_degrees = pattern.column_degrees()
        self._amb = amb

        # --- precomputed tables for the batched evaluator -------------
        # free-variable decomposition: concatenated row r = l*amb + i_amb
        self._free_l = np.array([r // amb for r, _ in free], dtype=np.int64)
        self._free_i = np.array([r % amb for r, _ in free], dtype=np.int64)
        self._free_j = np.array([j for _, j in free], dtype=np.int64)
        self._free_lj = np.array(
            [self._col_degrees[j] for _, j in free], dtype=np.int64
        )
        # static condition weights: d det_i / d x_k = cof_i[i_amb, j] * w
        # with w = s_i^l * 1^(L_j - l), independent of x and t
        n = len(free)
        self._static_weights = np.empty((max(n - 1, 0), n), dtype=complex)
        for i in range(n - 1):
            self._static_weights[i] = np.asarray(self.points[i]) ** self._free_l
        # batched-minor index tables for the cofactor stack
        idx = np.arange(amb)
        keep = np.array([np.delete(idx, i) for i in range(amb)])
        self._minor_rows = keep[:, None, :, None]  # (amb, 1, amb-1, 1)
        self._minor_cols = keep[None, :, None, :]  # (1, amb, 1, amb-1)
        self._minor_signs = (-1.0) ** np.add.outer(idx, idx)
        # static X(s_i, 1) assembly: X_i = sum_l s_i^l * C_block_l, valid
        # because coefficients above a column's degree are zero by pattern
        self._n_blocks = problem.nrows // amb
        if n > 1:
            self._spow = np.empty((n - 1, self._n_blocks), dtype=complex)
            for i in range(n - 1):
                self._spow[i] = np.asarray(self.points[i]) ** np.arange(
                    self._n_blocks
                )
            self._k_stack = np.stack(self.planes[: n - 1])
        else:
            self._spow = np.empty((0, self._n_blocks), dtype=complex)
            self._k_stack = np.empty((0, amb, problem.m), dtype=complex)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self._free)

    def to_matrix(self, x: np.ndarray) -> np.ndarray:
        """Scatter the unknown vector into a concatenated matrix."""
        c = np.zeros((self.problem.nrows, self.problem.p), dtype=complex)
        for row, j in self._fixed:
            c[row, j] = 1.0
        for val, (row, j) in zip(x, self._free):
            c[row, j] = val
        return c

    def from_matrix(self, c: np.ndarray) -> np.ndarray:
        """Gather the unknown vector from a matrix in this chart."""
        for row, j in self._fixed:
            if abs(c[row, j] - 1.0) > 1e-8:
                raise ValueError("matrix is not in this homotopy's chart")
        return np.array([c[row, j] for row, j in self._free], dtype=complex)

    def start_vector(self, child_matrix: np.ndarray) -> np.ndarray:
        """Embed a child solution (standard chart) as the start unknowns.

        The child matrix vanishes at the new star position, so gathering
        the parent chart's free entries automatically sets it to zero.
        """
        return np.array(
            [child_matrix[row, j] for row, j in self._free], dtype=complex
        )

    # ------------------------------------------------------------------
    def _moving_paths(self, t: float) -> Tuple[complex, complex, np.ndarray]:
        s = (1.0 - t) * self.gamma_s + t * self.points[-1]
        s0 = complex(t)
        k = (1.0 - t) * self.gamma_k * self.k_special + t * self.planes[-1]
        return s, s0, k

    def _condition_matrix(
        self, c: np.ndarray, s: complex, s0: complex, k: np.ndarray
    ) -> np.ndarray:
        return np.hstack([evaluate_map(c, self.pattern, s, s0), k])

    def _all_condition_matrices(self, c: np.ndarray, t: float):
        """All n condition matrices stacked (n, amb, amb) plus (s, s0).

        Static rows are assembled in one einsum over the degree blocks of
        the concatenated matrix (entries above a column's degree vanish by
        the pattern, so no per-column masking is needed at s0 = 1).
        """
        n = self.dim
        amb = self._amb
        p = self.problem.p
        mats = np.empty((n, amb, amb), dtype=complex)
        if n > 1:
            blocks = c.reshape(self._n_blocks, amb, p)
            mats[: n - 1, :, :p] = np.einsum(
                "il,lap->iap", self._spow, blocks
            )
            mats[: n - 1, :, p:] = self._k_stack
        s, s0, k = self._moving_paths(t)
        mats[n - 1] = self._condition_matrix(c, s, s0, k)
        return mats, s, s0

    def _batched_cofactors(self, mats: np.ndarray) -> np.ndarray:
        """Cofactor matrices of a stack, one vectorized det call.

        mats: (n, amb, amb) -> cofs: (n, amb, amb).  For amb = 1 the
        cofactor is 1 by convention.
        """
        n, amb, _ = mats.shape
        if amb == 1:
            return np.ones((n, 1, 1), dtype=complex)
        minors = mats[:, self._minor_rows, self._minor_cols]
        dets = np.linalg.det(minors.reshape(n * amb * amb, amb - 1, amb - 1))
        return self._minor_signs[None, :, :] * dets.reshape(n, amb, amb)

    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        c = self.to_matrix(x)
        mats, _, _ = self._all_condition_matrices(c, t)
        return np.linalg.det(mats)

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_and_jacobian_x(x, t)[1]

    def evaluate_and_jacobian_x(self, x, t):
        """Residual and Jacobian in three batched numpy calls.

        Row i of the Jacobian is d det(M_i)/d x_k = cof_i[i_amb(k), j(k)]
        times the homogenization weight s^l * s0^(L_j - l); static rows'
        weights were precomputed at construction, the moving row's depend
        on t only.  Residuals reuse the cofactors via first-row expansion,
        keeping value and gradient exactly consistent.
        """
        c = self.to_matrix(x)
        n = self.dim
        mats, s, s0 = self._all_condition_matrices(c, t)
        cofs = self._batched_cofactors(mats)
        # residuals: expansion along the first row of each matrix
        res = np.einsum("ej,ej->e", mats[:, 0, :], cofs[:, 0, :])
        # gradient gather: cofactor entry of each free variable's position
        gathered = cofs[:, self._free_i, self._free_j]  # (n, nfree)
        jac = np.empty((n, n), dtype=complex)
        if n > 1:
            jac[: n - 1] = gathered[: n - 1] * self._static_weights
        moving_w = (s**self._free_l) * (
            s0 ** (self._free_lj - self._free_l)
        )
        jac[n - 1] = gathered[n - 1] * moving_w
        return res, jac

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        """Only the moving condition depends on t."""
        c = self.to_matrix(x)
        n = self.dim
        out = np.zeros(n, dtype=complex)
        s, s0, k = self._moving_paths(t)
        m = self._condition_matrix(c, s, s0, k)
        cof = cofactor_matrix(m)
        amb = self._amb
        p = self.problem.p
        ds = self.points[-1] - self.gamma_s
        ds0 = 1.0
        dm = np.zeros_like(m)
        # X block: chain rule through s(t), s0(t) per coefficient
        for j in range(p):
            lj = self._col_degrees[j]
            for l in range(lj + 1):
                dw = 0j
                if l > 0:
                    dw += l * (s ** (l - 1)) * (s0 ** (lj - l)) * ds
                if lj - l > 0:
                    dw += (lj - l) * (s0 ** (lj - l - 1)) * (s**l) * ds0
                if dw != 0:
                    block = c[l * amb : (l + 1) * amb, j]
                    dm[:, j] += block * dw
        # K block: d/dt [(1-t) gamma_k K_b + t K_n]
        dm[:, p:] = self.planes[-1] - self.gamma_k * self.k_special
        out[n - 1] = np.sum(cof * dm)
        return out

    def __repr__(self) -> str:
        return (
            f"PieriEdgeHomotopy(pattern={self.pattern.shorthand()}, "
            f"jstar={self.jstar}, dim={self.dim})"
        )
