"""The Pieri tree (paper §III-C, Fig 5) and the poset-vs-tree memory model.

The poset counts solutions; the *tree* organizes the path-tracking jobs so
they can run in parallel.  A tree node is a full increment-chain from the
trivial pattern; two jobs become independent as soon as their common
ancestor's solution is known, and a node's storage can be released after
its at-most ``p + 1`` incident jobs finish — the memory argument of §III-C,
quantified here by :func:`memory_profile`.

The tree is *virtual*: children are generated on demand from the pattern's
increment rule, so building jobs never materializes the (exponentially
many) leaves ahead of time — mirroring the paper's master that generates at
most ``p`` new jobs per returned result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .patterns import LocalizationPattern, PieriProblem
from .poset import PieriPoset

__all__ = ["PieriTreeNode", "PieriTree", "memory_profile"]


@dataclass(frozen=True)
class PieriTreeNode:
    """A node of the Pieri tree: the chain of pivot increments taken.

    ``columns`` records which column's bottom pivot was incremented at each
    step, which identifies the chain uniquely; the pattern is recomputed on
    demand.  The root node is the empty chain at the trivial pattern.
    """

    problem: PieriProblem
    columns: Tuple[int, ...] = ()

    @property
    def level(self) -> int:
        return len(self.columns)

    def pattern(self) -> LocalizationPattern:
        pat = self.problem.trivial_pattern()
        for c in self.columns:
            pat = pat.child_via(c)
        return pat

    def children(self) -> Iterator["PieriTreeNode"]:
        for col, _child in self.pattern().children():
            yield PieriTreeNode(self.problem, self.columns + (col,))

    def parent(self) -> Optional["PieriTreeNode"]:
        if not self.columns:
            return None
        return PieriTreeNode(self.problem, self.columns[:-1])

    def is_leaf(self) -> bool:
        """A leaf carries a final solution: its pattern is the poset root."""
        return self.pattern().is_root

    def __str__(self) -> str:
        return f"{self.pattern().shorthand()}@{self.level}"


class PieriTree:
    """Virtual Pieri tree with lazy traversal and counting helpers."""

    def __init__(self, problem: PieriProblem) -> None:
        self.problem = problem
        self.root = PieriTreeNode(problem)

    def walk_dfs(self) -> Iterator[PieriTreeNode]:
        """Depth-first traversal of the whole tree (root included)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children())))

    def walk_bfs(self) -> Iterator[PieriTreeNode]:
        from collections import deque

        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children())

    def leaf_count(self) -> int:
        """Number of leaves == root count d(m, p, q) (checked in tests)."""
        poset = PieriPoset.build(self.problem)
        return poset.root_count()

    def node_count_per_level(self) -> List[int]:
        """Tree nodes per level == the poset's chain counts per level."""
        poset = PieriPoset.build(self.problem)
        return [sum(lv.values()) for lv in poset.levels]

    def edge_count(self) -> int:
        """Total path-tracking jobs (edges) in the whole tree."""
        return sum(self.node_count_per_level()[1:])

    def ascii_art(self, max_depth: int = 4) -> str:
        """Indented rendering of the top of the tree (Fig 5 for small cases)."""
        lines: List[str] = []

        def rec(node: PieriTreeNode, depth: int) -> None:
            lines.append("  " * depth + node.pattern().shorthand())
            if depth >= max_depth:
                if any(True for _ in node.children()):
                    lines.append("  " * (depth + 1) + "...")
                return
            for child in node.children():
                rec(child, depth + 1)

        rec(self.root, 0)
        return "\n".join(lines)


@dataclass
class _MemoryCounters:
    active: int = 0
    high_water: int = 0

    def alloc(self, k: int = 1) -> None:
        self.active += k
        self.high_water = max(self.high_water, self.active)

    def release(self, k: int = 1) -> None:
        self.active -= k


def memory_profile(problem: PieriProblem) -> Dict[str, int]:
    """High-water active-node counts: tree traversal vs poset schedule.

    Models §III-C's memory argument.

    - **tree**: depth-first execution of the Pieri tree; a node stays live
      while any of its children still needs it as a start solution, so the
      high-water mark is about (depth x branching), small.
    - **poset**: level-synchronous execution over the poset; every node of
      the current and next level stays live simultaneously, so the peak is
      the sum of the two widest consecutive level *path counts* — the
      "carry information of many more paths" effect that exhausts memory.
    """
    poset = PieriPoset.build(problem)

    # poset model: nodes carry all chains into them; two consecutive levels
    # of *solutions* (chain counts) are live at once during the sweep.
    per_level_solutions = [sum(lv.values()) for lv in poset.levels]
    poset_peak = max(
        per_level_solutions[n] + per_level_solutions[n + 1]
        for n in range(len(per_level_solutions) - 1)
    )

    # tree model: DFS with release when a node's last child finishes.
    counters = _MemoryCounters()

    def rec(node: PieriTreeNode) -> None:
        counters.alloc()
        for child in node.children():
            rec(child)
        counters.release()

    rec(PieriTreeNode(problem))
    return {
        "tree_high_water": counters.high_water,
        "poset_high_water": poset_peak,
        "total_solutions": poset.root_count(),
        "total_jobs": sum(per_level_solutions[1:]),
    }
