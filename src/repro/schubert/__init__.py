"""Numerical Schubert calculus: Pieri homotopies over posets and trees.

This package is the paper's primary contribution: computing *all* maps of
p-planes of degree q meeting N = m*p + q*(m+p) general m-planes at
prescribed interpolation points, by nested Pieri homotopies organized along
a tree so that path-tracking jobs parallelize.
"""

from .patterns import LocalizationPattern, PieriProblem
from .poset import PieriPoset, level_job_counts, pieri_root_count
from .tree import PieriTree, PieriTreeNode, memory_profile
from .homotopy import (
    PieriEdgeHomotopy,
    evaluate_map,
    intersection_residuals,
    normalize_to_standard_chart,
    special_plane,
    trivial_solution_matrix,
)
from .solver import (
    PieriInstance,
    PieriJob,
    PieriJobResult,
    PieriReport,
    PieriSolver,
)
from .parameter import (
    PieriParameterHomotopy,
    PieriParameterStack,
    continue_to_instance,
    continue_to_instances,
)
from .verify import VerificationReport, verify_solutions

__all__ = [
    "LocalizationPattern",
    "PieriProblem",
    "PieriPoset",
    "level_job_counts",
    "pieri_root_count",
    "PieriTree",
    "PieriTreeNode",
    "memory_profile",
    "PieriEdgeHomotopy",
    "evaluate_map",
    "intersection_residuals",
    "normalize_to_standard_chart",
    "special_plane",
    "trivial_solution_matrix",
    "PieriInstance",
    "PieriJob",
    "PieriJobResult",
    "PieriReport",
    "PieriSolver",
    "VerificationReport",
    "verify_solutions",
    "PieriParameterHomotopy",
    "PieriParameterStack",
    "continue_to_instance",
    "continue_to_instances",
]
