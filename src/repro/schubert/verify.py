"""Independent verification of Pieri solution sets.

Everything the solver claims is re-checked here from first principles,
without reusing the solver's internal state: pattern fit, chart
normalization, intersection-condition residuals, pairwise distinctness and
the combinatorial count.  Tests and benchmarks call this instead of
trusting the solver's own bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .homotopy import intersection_residuals
from .patterns import LocalizationPattern
from .poset import PieriPoset
from .solver import PieriInstance

__all__ = ["VerificationReport", "verify_solutions"]


@dataclass
class VerificationReport:
    """Outcome of verifying one solution set against its instance."""

    n_solutions: int
    expected_count: int
    max_residual: float
    min_pairwise_distance: float
    pattern_violations: int
    chart_violations: int
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAILED: " + "; ".join(self.issues)
        return (
            f"{self.n_solutions}/{self.expected_count} solutions, "
            f"max residual {self.max_residual:.2e}, "
            f"min distance {self.min_pairwise_distance:.2e} -> {status}"
        )


def verify_solutions(
    instance: PieriInstance,
    solutions: Sequence[np.ndarray],
    residual_tol: float = 1e-8,
    distinct_tol: float = 1e-6,
) -> VerificationReport:
    """Re-check a claimed solution set of a Pieri instance.

    Checks, in order: the count matches d(m, p, q); every matrix fits the
    root localization pattern in the standard chart (support + unit
    pivots); all N determinant residuals are below ``residual_tol``; and
    solutions are pairwise distinct beyond ``distinct_tol``.
    """
    problem = instance.problem
    poset = PieriPoset.build(problem)
    root: LocalizationPattern = poset.root()
    expected = poset.root_count()
    issues: List[str] = []

    support = {(r - 1, j - 1) for r, j in root.support()}
    pattern_violations = 0
    chart_violations = 0
    worst_residual = 0.0

    for k, sol in enumerate(solutions):
        sol = np.asarray(sol, dtype=complex)
        if sol.shape != (problem.nrows, problem.p):
            issues.append(f"solution {k} has shape {sol.shape}")
            continue
        nz = {tuple(idx) for idx in np.argwhere(np.abs(sol) > 1e-10)}
        if not nz <= support:
            pattern_violations += 1
        for j, b in enumerate(root.bottom_pivots):
            if abs(sol[b - 1, j] - 1.0) > 1e-8:
                chart_violations += 1
                break
        res = intersection_residuals(
            sol, root, instance.planes, instance.points
        )
        worst_residual = max(worst_residual, float(np.max(np.abs(res))))

    min_dist = float("inf")
    sols = [
        np.asarray(s, dtype=complex)
        for s in solutions
        if np.asarray(s).shape == (problem.nrows, problem.p)
    ]
    for i in range(len(sols)):
        for j in range(i + 1, len(sols)):
            min_dist = min(
                min_dist, float(np.max(np.abs(sols[i] - sols[j])))
            )

    if len(solutions) != expected:
        issues.append(f"count {len(solutions)} != d(m,p,q) = {expected}")
    if pattern_violations:
        issues.append(f"{pattern_violations} solutions leave the pattern")
    if chart_violations:
        issues.append(f"{chart_violations} solutions not in standard chart")
    if worst_residual > residual_tol:
        issues.append(f"residual {worst_residual:.2e} > {residual_tol:.0e}")
    if len(solutions) > 1 and min_dist < distinct_tol:
        issues.append(f"solutions collide (distance {min_dist:.2e})")

    return VerificationReport(
        n_solutions=len(solutions),
        expected_count=expected,
        max_residual=worst_residual,
        min_pairwise_distance=min_dist,
        pattern_violations=pattern_violations,
        chart_violations=chart_violations,
        issues=issues,
    )
