"""Sequential Pieri homotopy solver: drive jobs over the Pieri tree.

One *job* tracks one solution path along a tree edge (paper §III-C/D): given
the solution at a node's parent, it produces the solution at the node.  The
solver exposes the job machinery (``initial_jobs`` / ``run_job`` /
``expand``) so the sequential DFS here and the parallel master/slave
scheduler in :mod:`repro.parallel` drive *exactly the same computation* —
only the order differs, which is what makes the sequential/parallel
agreement tests meaningful.

Two tracking modes share those hooks.  ``solve(mode="per_path")`` is the
paper's unit of work: one scalar tracker call per edge.
``solve(mode="batch")`` exploits that every edge at tree level ``n`` has
the same shape (``dim == n``): a whole level's edges are stacked into one
:class:`~repro.tracker.StackedHomotopy` and advanced by the SoA
:class:`~repro.tracker.BatchTracker` as a single front
(:meth:`PieriSolver.run_jobs_batched`), with the retry ladder and
chart-switch continuation reworked as batch-aware requeues.  Per-path
decisions are identical in both modes, so the solution sets agree.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple

import numpy as np

from ..linalg import random_plane
from ..tracker import (
    BatchTracker,
    PathResult,
    PathStatus,
    PathTracker,
    StackedHomotopy,
    TrackerOptions,
    track_with_rescue,
)
from ..tracker.rescue import fold_rescued_effort, keep_rescue
from .homotopy import (
    PieriEdgeHomotopy,
    intersection_residuals,
    normalize_to_standard_chart,
    trivial_solution_matrix,
)
from .patterns import PieriProblem
from .poset import PieriPoset
from .tree import PieriTreeNode

__all__ = [
    "PieriInstance",
    "PieriJob",
    "PieriJobResult",
    "PieriReport",
    "PieriSolver",
]


@dataclass
class PieriInstance:
    """A concrete pole-placement-shaped input: N planes and N points."""

    problem: PieriProblem
    planes: List[np.ndarray]
    points: List[complex]

    def __post_init__(self) -> None:
        n = self.problem.num_conditions
        if len(self.planes) != n or len(self.points) != n:
            raise ValueError(f"need exactly {n} planes and points")
        amb = self.problem.ambient
        for k in self.planes:
            if k.shape != (amb, self.problem.m):
                raise ValueError(
                    f"planes must be {amb} x {self.problem.m} matrices"
                )
        if len(set(self.points)) != len(self.points):
            raise ValueError("interpolation points must be distinct")

    @classmethod
    def random(
        cls,
        m: int,
        p: int,
        q: int = 0,
        rng: np.random.Generator | None = None,
    ) -> "PieriInstance":
        """General-position input: Haar planes, unit-circle-ish points.

        Parameters
        ----------
        m, p, q:
            Problem shape: maps of ``p``-planes of degree ``q`` meeting
            ``N = m*p + q*(m+p)`` general ``m``-planes.
        rng:
            Seed it for a reproducible instance.

        >>> import numpy as np
        >>> inst = PieriInstance.random(2, 2, 0, np.random.default_rng(0))
        >>> inst.problem.num_conditions, len(inst.planes), len(inst.points)
        (4, 4, 4)
        """
        rng = np.random.default_rng() if rng is None else rng
        problem = PieriProblem(m, p, q)
        n = problem.num_conditions
        planes = [random_plane(problem.ambient, m, rng) for _ in range(n)]
        points = [
            complex(np.exp(2j * np.pi * rng.random()) * (0.5 + rng.random()))
            for _ in range(n)
        ]
        return cls(problem, planes, points)


@dataclass
class PieriJob:
    """Track the edge into ``node`` starting from its parent's solution."""

    node: PieriTreeNode
    start_matrix: np.ndarray

    @property
    def level(self) -> int:
        return self.node.level


@dataclass
class PieriJobResult:
    """Outcome of one job: the node's solution matrix, or a failure."""

    job: PieriJob
    path_result: PathResult
    matrix: Optional[np.ndarray] = None

    @property
    def success(self) -> bool:
        return self.matrix is not None


@dataclass
class PieriReport:
    """Aggregate of a full solve."""

    instance: PieriInstance
    solutions: List[np.ndarray] = field(default_factory=list)
    failures: int = 0
    jobs_per_level: Dict[int, int] = field(default_factory=dict)
    seconds_per_level: Dict[int, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: one record per tree level when solved with ``mode="batch"``:
    #: n_jobs, n_homotopies, chart_switches, retries, seconds
    level_batches: List[dict] = field(default_factory=list)
    #: artifact-store routing of this solve, when a ``cache=`` was given:
    #: ``status`` ("warm" — continued from the cached generic instance
    #: in exactly ``n_paths == d(m, p, q)`` paths — or "cold"), the
    #: store ``key``, and for cold solves whether the result was
    #: ``stored`` for future warm queries
    cache: Optional[dict] = None

    @property
    def n_solutions(self) -> int:
        return len(self.solutions)

    def expected_count(self) -> int:
        return PieriPoset.build(self.instance.problem).root_count()

    def max_residual(self) -> float:
        """Largest |det| residual over all solutions and all N conditions."""
        root = PieriPoset.build(self.instance.problem).root()
        worst = 0.0
        for sol in self.solutions:
            res = intersection_residuals(
                sol, root, self.instance.planes, self.instance.points
            )
            worst = max(worst, float(np.max(np.abs(res))))
        return worst

    def all_distinct(self, tol: float = 1e-6) -> bool:
        for i in range(len(self.solutions)):
            for j in range(i + 1, len(self.solutions)):
                if np.max(np.abs(self.solutions[i] - self.solutions[j])) < tol:
                    return False
        return True


class PieriSolver:
    """Runs Pieri jobs; sequential driver plus hooks for the parallel one.

    The one-call entry point is :meth:`solve`; the job-level hooks
    (:meth:`initial_jobs` / :meth:`run_job` / :meth:`expand`) let the
    parallel tree scheduler and the sweep engine drive exactly the same
    computation.

    >>> import numpy as np
    >>> instance = PieriInstance.random(2, 2, 0, np.random.default_rng(1))
    >>> report = PieriSolver(instance, seed=2).solve()
    >>> report.n_solutions, report.expected_count(), report.failures
    (2, 2, 0)
    >>> report.max_residual() < 1e-8 and report.all_distinct()
    True

    ``mode="batch"`` tracks whole tree levels as stacked SoA fronts and
    finds the same solutions:

    >>> batch = PieriSolver(instance, seed=2).solve(mode="batch")
    >>> batch.n_solutions == report.n_solutions
    True
    >>> len(batch.level_batches) == instance.problem.num_conditions
    True
    """

    #: Default tracking parameters for Pieri edges: conservative steps and a
    #: strict corrector so that close sibling paths are not jumped (a jump
    #: merges two endpoints and silently loses a feedback law).
    DEFAULT_OPTIONS = TrackerOptions(
        initial_step=0.02,
        max_step=0.08,
        corrector_tol=1e-10,
        corrector_iterations=4,
        expand_after=4,
    )

    def __init__(
        self,
        instance: PieriInstance,
        options: TrackerOptions | None = None,
        seed: int = 0,
    ) -> None:
        self.instance = instance
        self.problem = instance.problem
        self.tracker = PathTracker(options or self.DEFAULT_OPTIONS)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def _edge_rng(self, node: PieriTreeNode, attempt: int = 0) -> np.random.Generator:
        """Deterministic randomness keyed on the *poset* node.

        All tree edges into the same pattern at the same level must share
        one homotopy (identical gamma twists): the Pieri induction gives a
        bijection between the start branches (one per child solution) and
        the endpoints, so distinct chains stay distinct.  Keying on the
        chain history instead would give each edge its own homotopy and
        let endpoints collide.  This also makes parallel == sequential.

        ``attempt`` is accepted for interface stability but deliberately
        ignored: retrying a *single* edge with fresh gammas would break the
        per-node bijection (its endpoint could collide with a sibling's).
        Failed paths are retried with tighter tracking of the *same*
        homotopy instead (see :meth:`run_job`).
        """
        del attempt
        pattern = node.pattern()
        return np.random.default_rng(
            [self.seed, node.level, *pattern.bottom_pivots]
        )

    def make_homotopy(
        self,
        node: PieriTreeNode,
        attempt: int = 0,
        pin_row: int | None = None,
    ) -> PieriEdgeHomotopy:
        if node.level == 0:
            raise ValueError("the root node has no incoming edge")
        n = node.level
        pattern = node.pattern()
        jstar = node.columns[-1]
        return PieriEdgeHomotopy(
            pattern,
            jstar,
            self.instance.planes[:n],
            self.instance.points[:n],
            rng=self._edge_rng(node, attempt),
            pin_row=pin_row,
        )

    def initial_jobs(self) -> List[PieriJob]:
        """Jobs out of the tree root (at most p of them)."""
        root = PieriTreeNode(self.problem)
        start = trivial_solution_matrix(self.problem)
        return [PieriJob(child, start) for child in root.children()]

    #: How many times a failed path is re-tracked with tighter steps.
    MAX_RETRIES = 2

    def _retry_options(self, attempt: int) -> TrackerOptions:
        """Progressively conservative options for retries of hard paths.

        ``dataclasses.replace`` keeps every field not listed here at the
        *caller's* value, so new :class:`TrackerOptions` fields are never
        silently reset to their defaults on a retry.
        """
        base = self.tracker.options
        factor = 0.25**attempt
        return dataclasses.replace(
            base,
            initial_step=max(base.initial_step * factor, base.min_step),
            min_step=base.min_step * factor,
            max_step=max(base.max_step * factor, base.min_step),
            expand_after=base.expand_after + attempt,
            max_steps=base.max_steps * (attempt + 1),
        )

    def _retry_tracker(self, attempt: int) -> PathTracker:
        """A scalar tracker with the attempt's tightened options (same
        endgame strategy as the main tracker)."""
        return PathTracker(
            self._retry_options(attempt), endgame=self.tracker.endgame
        )

    def run_job(self, job: PieriJob) -> PieriJobResult:
        """Track one edge and normalize the endpoint to the standard chart.

        Apparent divergence routes through the tracker-level rescue
        pipeline (:func:`~repro.tracker.track_with_rescue`): the edge
        homotopy's :meth:`~repro.schubert.homotopy.PieriEdgeHomotopy.
        rescale_patch` re-pins the chart and the same geometric path is
        resumed from its reached ``t``.  Remaining failures are retried
        with tighter tracking of the *same* homotopy (same gamma twists)
        so the per-node start/endpoint bijection that guarantees
        distinct solutions is never violated; endpoints the endgame
        already classified (e.g. a Cauchy-measured singularity) are not
        retried — the verdict stands.
        """
        homotopy = self.make_homotopy(job.node)
        x0 = homotopy.start_vector(job.start_matrix)
        result, homotopy = track_with_rescue(self.tracker, homotopy, x0)
        for attempt in range(1, self.MAX_RETRIES + 1):
            if result.success or result.endgame_classified:
                break
            result = self._retry_tracker(attempt).track(homotopy, x0)
        if not result.success:
            return PieriJobResult(job, result, None)
        matrix = homotopy.to_matrix(result.solution)
        try:
            matrix = normalize_to_standard_chart(matrix, job.node.pattern())
        except ZeroDivisionError:
            return PieriJobResult(job, result, None)
        return PieriJobResult(job, result, matrix)

    def expand(self, result: PieriJobResult) -> List[PieriJob]:
        """New jobs enabled by a finished one (the master's generate step)."""
        if not result.success:
            return []
        return [
            PieriJob(child, result.matrix)
            for child in result.job.node.children()
        ]

    # ------------------------------------------------------------------
    # Batched tracking: a whole tree level as one stacked SoA front
    # ------------------------------------------------------------------
    def run_jobs_batched(
        self, jobs: Sequence[PieriJob]
    ) -> Tuple[List[PieriJobResult], Dict[str, int]]:
        """Track many same-level edges as one stacked batch.

        All jobs must share a tree level, so their edge homotopies share
        a shape (``dim == level``) and stack into one
        :class:`~repro.tracker.StackedHomotopy` front.  Edges into the
        same poset node reuse one homotopy object (identical gamma
        twists), exactly as :meth:`run_job` builds them, so the
        start/endpoint bijection that keeps solutions distinct is
        preserved.  The scalar driver's failure handling is reworked as
        batch-aware requeues:

        - apparently divergent paths are re-pinned and *resumed* in a
          rescaled chart, each from its own reached ``t`` (the
          chart-switch continuation, stacked per target chart);
        - remaining failures are re-tracked from their start points with
          the progressively tighter retry options, as one stacked batch
          per attempt, against the *original* homotopies (fresh gammas
          would break the bijection).

        Returns one :class:`PieriJobResult` per job, in input order,
        plus a stats dict (``n_jobs``, ``n_homotopies``,
        ``chart_switches``, ``retries``).
        """
        jobs = list(jobs)
        if not jobs:
            return [], {
                "n_jobs": 0,
                "n_homotopies": 0,
                "chart_switches": 0,
                "retries": 0,
            }
        if len({job.level for job in jobs}) != 1:
            raise ValueError("batched Pieri jobs must share one tree level")
        # one homotopy per (pattern, jstar) class — all chains into the
        # same poset node share gamma twists (see _edge_rng)
        members: List[PieriEdgeHomotopy] = []
        index: Dict[tuple, int] = {}
        owners: List[int] = []
        for job in jobs:
            key = (job.node.pattern().bottom_pivots, job.node.columns[-1])
            k = index.get(key)
            if k is None:
                k = index[key] = len(members)
                members.append(self.make_homotopy(job.node))
            owners.append(k)
        x0 = [
            members[k].start_vector(job.start_matrix)
            for k, job in zip(owners, jobs)
        ]
        tracker = BatchTracker(self.tracker.options, endgame=self.tracker.endgame)
        results = tracker.track_batch(StackedHomotopy(members, owners), x0)
        homs: List[PieriEdgeHomotopy] = [members[k] for k in owners]
        stats = {
            "n_jobs": len(jobs),
            "n_homotopies": len(members),
            "chart_switches": 0,
            "retries": 0,
        }

        # --- chart-switch requeue: re-pin and resume divergent paths
        # through the rescue hook, stacked per target chart (switched
        # homotopies for one poset node + pin are deterministic clones,
        # so grouping them under one member changes nothing)
        sw_members: List[PieriEdgeHomotopy] = []
        sw_index: Dict[tuple, int] = {}
        sw_paths: List[int] = []   # index into jobs/results
        sw_owner: List[int] = []
        sw_x: List[np.ndarray] = []
        sw_t: List[float] = []
        for i, r in enumerate(results):
            if r.status is not PathStatus.DIVERGED:
                continue
            job = jobs[i]
            patch = homs[i].rescale_patch(r.solution, r.stats.t_reached)
            if patch is None:
                continue
            new_hom, x1 = patch
            skey = (
                job.node.pattern().bottom_pivots,
                job.node.columns[-1],
                new_hom.pin_row,
            )
            k = sw_index.get(skey)
            if k is None:
                k = sw_index[skey] = len(sw_members)
                sw_members.append(new_hom)
            sw_paths.append(i)
            sw_owner.append(k)
            sw_x.append(x1)
            sw_t.append(r.stats.t_reached)
        if sw_paths:
            stats["chart_switches"] = len(sw_paths)
            resumed = tracker.track_batch(
                StackedHomotopy(sw_members, sw_owner),
                sw_x,
                path_ids=[results[i].path_id for i in sw_paths],
                t_start=np.array(sw_t),
            )
            for i, k, rr in zip(sw_paths, sw_owner, resumed):
                # same finalize/keep/fold sequence as the scalar rescue
                # pipeline, so the two drivers cannot disagree on a
                # rescued verdict, its coordinates, or its stats
                rr = sw_members[k].finalize_rescued(rr)
                if keep_rescue(rr):
                    results[i] = fold_rescued_effort(rr, results[i])
                    homs[i] = sw_members[k]

        # --- retry ladder: tighter tracking of the same homotopies;
        # endgame-classified endpoints (measured singularities) are
        # final verdicts, not failures to burn retries on
        for attempt in range(1, self.MAX_RETRIES + 1):
            fail = [
                i
                for i, r in enumerate(results)
                if not r.success and not r.endgame_classified
            ]
            if not fail:
                break
            stats["retries"] += len(fail)
            retry = BatchTracker(
                self._retry_options(attempt), endgame=self.tracker.endgame
            )
            retried = retry.track_batch(
                StackedHomotopy(members, [owners[i] for i in fail]),
                [x0[i] for i in fail],
                path_ids=[results[i].path_id for i in fail],
            )
            for i, rr in zip(fail, retried):
                results[i] = rr
                homs[i] = members[owners[i]]

        # --- normalize endpoints to the standard chart, as run_job does
        out: List[PieriJobResult] = []
        for job, r, hom in zip(jobs, results, homs):
            if not r.success:
                out.append(PieriJobResult(job, r, None))
                continue
            matrix = hom.to_matrix(r.solution)
            try:
                matrix = normalize_to_standard_chart(matrix, job.node.pattern())
            except ZeroDivisionError:
                out.append(PieriJobResult(job, r, None))
                continue
            out.append(PieriJobResult(job, r, matrix))
        return out, stats

    # ------------------------------------------------------------------
    def solve(
        self,
        mode: Literal["per_path", "batch"] = "per_path",
        cache=None,
    ) -> PieriReport:
        """Sequential solve of the whole tree.

        ``per_path`` runs the depth-first scalar driver (one tracked
        path per call, the paper's unit of work); ``batch`` runs the
        tree level-synchronously, tracking every edge of a level as one
        stacked structure-of-arrays front and recording per-level batch
        stats in ``report.level_batches``.  Both modes build identical
        homotopies, so the solution sets agree.

        ``cache`` (an :class:`~repro.artifacts.ArtifactStore`, a path,
        or ``True`` for the ``$REPRO_ARTIFACT_STORE`` default) turns on
        the offline/online split: when the store holds a solved generic
        instance of this shape, the query is served *warm* by
        coefficient-parameter continuation — exactly ``d(m, p, q)``
        tracked paths instead of the whole tree — and
        ``report.cache["status"]`` says which route ran.  A cold solve
        that finds every expected root populates the store on the way
        out.  A warm attempt that fails any path falls back to the
        ab-initio tree (cached data can steer the route, never the
        answer).
        """
        if mode not in ("per_path", "batch"):
            raise ValueError(f"unknown mode {mode!r}")
        store = None
        if cache is not None:
            from ..artifacts import resolve_store

            store = resolve_store(cache)
        if store is not None:
            report = self._solve_warm(store, mode)
            if report is not None:
                return report
        report = (
            self._solve_batched()
            if mode == "batch"
            else self._solve_per_path()
        )
        if store is not None:
            from ..artifacts import pieri_key, store_pieri_generic

            problem = self.problem
            report.cache = {
                "status": "cold",
                "key": pieri_key(problem.m, problem.p, problem.q),
                "n_paths": sum(report.jobs_per_level.values()),
                "stored": False,
            }
            complete = (
                report.failures == 0
                and report.n_solutions == report.expected_count()
            )
            if complete:
                store_pieri_generic(
                    store,
                    self.instance,
                    report.solutions,
                    report.jobs_per_level,
                )
                report.cache["stored"] = True
        return report

    def _solve_warm(self, store, mode: str) -> Optional[PieriReport]:
        """Serve the query from a cached solved generic instance.

        Returns ``None`` — caller falls back to the ab-initio tree —
        when the store has no (valid) artifact for this shape or any
        continuation path fails; a warm answer is all-or-nothing.
        """
        from ..artifacts import load_pieri_generic, pieri_key
        from .parameter import continue_to_instance

        problem = self.problem
        loaded = load_pieri_generic(store, problem.m, problem.p, problem.q)
        if loaded is None:
            return None
        generic, generic_solutions, _meta = loaded
        t_start = time.perf_counter()
        rng = np.random.default_rng([self.seed, problem.m, problem.p,
                                     problem.q, 1])
        solutions, results = continue_to_instance(
            generic,
            generic_solutions,
            self.instance,
            options=self.tracker.options,
            rng=rng,
            mode=mode,
        )
        if any(not r.success for r in results):
            return None
        seconds = time.perf_counter() - t_start
        report = PieriReport(
            self.instance,
            solutions=solutions,
            total_seconds=seconds,
            level_batches=[
                {
                    "level": "online",
                    "n_jobs": 1,
                    "n_homotopies": 1,
                    "n_paths": len(results),
                    "seconds": seconds,
                }
            ],
        )
        report.cache = {
            "status": "warm",
            "key": pieri_key(problem.m, problem.p, problem.q),
            "n_paths": len(results),
            "seconds": seconds,
        }
        return report

    def _solve_per_path(self) -> PieriReport:
        """Depth-first scalar solve (the ``mode="per_path"`` body)."""
        t_start = time.perf_counter()
        report = PieriReport(self.instance)
        stack = self.initial_jobs()
        while stack:
            job = stack.pop()
            t0 = time.perf_counter()
            result = self.run_job(job)
            dt = time.perf_counter() - t0
            lvl = job.level
            report.jobs_per_level[lvl] = report.jobs_per_level.get(lvl, 0) + 1
            report.seconds_per_level[lvl] = (
                report.seconds_per_level.get(lvl, 0.0) + dt
            )
            if not result.success:
                report.failures += 1
                continue
            if job.node.is_leaf():
                report.solutions.append(result.matrix)
            else:
                stack.extend(self.expand(result))
        report.total_seconds = time.perf_counter() - t_start
        return report

    def _solve_batched(self) -> PieriReport:
        """Level-synchronous solve: one stacked batch per tree level."""
        t_start = time.perf_counter()
        report = PieriReport(self.instance)
        frontier = self.initial_jobs()
        while frontier:
            lvl = frontier[0].level
            t0 = time.perf_counter()
            results, stats = self.run_jobs_batched(frontier)
            dt = time.perf_counter() - t0
            report.jobs_per_level[lvl] = (
                report.jobs_per_level.get(lvl, 0) + len(frontier)
            )
            report.seconds_per_level[lvl] = (
                report.seconds_per_level.get(lvl, 0.0) + dt
            )
            report.level_batches.append(
                {"level": lvl, "seconds": dt, **stats}
            )
            nxt: List[PieriJob] = []
            for result in results:
                if not result.success:
                    report.failures += 1
                    continue
                if result.job.node.is_leaf():
                    report.solutions.append(result.matrix)
                else:
                    nxt.extend(self.expand(result))
            frontier = nxt
        report.total_seconds = time.perf_counter() - t_start
        return report
