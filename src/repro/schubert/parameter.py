"""Coefficient-parameter continuation between Pieri instances (cheater's
homotopy).

The Pieri tree solves one *general* instance from scratch with
``sum(level counts)`` paths (252 for the paper's (3,2,1) cell).  But once
any general instance is solved, every further instance of the same
(m, p, q) costs only ``d(m, p, q)`` paths (55 for that cell): deform the
planes and interpolation points along

    K_i(t) = (1-t) gamma_i K_i^start + t K_i^target
    s_i(t) = (1-t) s_i^start + t s_i^target + t (1-t) delta_i

and track each known solution.  Scaling a plane's basis by ``gamma_i``
does not change the plane, so the start conditions are untouched; the
points take a bent complex detour ``delta_i`` (vanishing at both ends)
because scaling *would* move them.  This is how the paper's framework serves
pole placement in practice — the expensive tree solve happens offline on
general data; placing poles for a *specific* machine is the cheap online
step ("A target root is used as the start root for the next iteration",
Fig 6).

The start solutions must be the full solution set of the start instance
(otherwise endpoints may be missed); with the gamma twists the deformation
avoids the discriminant with probability one and endpoints remain distinct.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..tracker import PathResult, PathTracker, TrackerOptions
from .homotopy import evaluate_map, normalize_to_standard_chart
from .patterns import LocalizationPattern
from .poset import PieriPoset
from .solver import PieriInstance
from ..tracker import HomotopyFunction

__all__ = ["PieriParameterHomotopy", "continue_to_instance"]


class PieriParameterHomotopy(HomotopyFunction):
    """H(x, t): root-pattern solutions deformed between two instances.

    Unknowns are the free coefficients of the *root* localization pattern
    in the standard chart (bottom pivots pinned to 1); all N conditions
    move simultaneously.
    """

    def __init__(
        self,
        start: PieriInstance,
        target: PieriInstance,
        rng: np.random.Generator | None = None,
    ) -> None:
        if start.problem != target.problem:
            raise ValueError("instances must share the same (m, p, q)")
        self.problem = start.problem
        self.start = start
        self.target = target
        rng = np.random.default_rng() if rng is None else rng
        n = self.problem.num_conditions
        self.gamma_k = np.exp(2j * np.pi * rng.random(n))
        # complex detour for the points, zero at t = 0 and t = 1
        self.delta_s = 0.5 * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        )

        self.pattern: LocalizationPattern = PieriPoset.build(
            self.problem
        ).root()
        amb = self.problem.ambient
        # chart: all bottom pivots pinned to 1; the rest of the support free
        pinned = {
            (b - 1, j) for j, b in enumerate(self.pattern.bottom_pivots)
        }
        self._free = sorted(
            (r - 1, j - 1)
            for r, j in self.pattern.support()
            if (r - 1, j - 1) not in pinned
        )
        self._amb = amb
        self._pinned = pinned
        # precomputed gather tables (as in PieriEdgeHomotopy)
        self._free_l = np.array([r // amb for r, _ in self._free])
        self._free_i = np.array([r % amb for r, _ in self._free])
        self._free_j = np.array([j for _, j in self._free])
        idx = np.arange(amb)
        keep = np.array([np.delete(idx, i) for i in range(amb)])
        self._minor_rows = keep[:, None, :, None]
        self._minor_cols = keep[None, :, None, :]
        self._minor_signs = (-1.0) ** np.add.outer(idx, idx)

    @property
    def dim(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------------
    def to_matrix(self, x: np.ndarray) -> np.ndarray:
        c = np.zeros((self.problem.nrows, self.problem.p), dtype=complex)
        for row, j in self._pinned:
            c[row, j] = 1.0
        for val, (row, j) in zip(x, self._free):
            c[row, j] = val
        return c

    def from_matrix(self, c: np.ndarray) -> np.ndarray:
        return np.array([c[row, j] for row, j in self._free], dtype=complex)

    def _paths_at(self, t: float):
        ks, ss = [], []
        for i in range(self.problem.num_conditions):
            ks.append(
                (1.0 - t) * self.gamma_k[i] * self.start.planes[i]
                + t * self.target.planes[i]
            )
            ss.append(
                (1.0 - t) * self.start.points[i]
                + t * self.target.points[i]
                + t * (1.0 - t) * self.delta_s[i]
            )
        return ks, ss

    def _matrices(self, c: np.ndarray, t: float) -> np.ndarray:
        ks, ss = self._paths_at(t)
        n = self.problem.num_conditions
        amb = self._amb
        mats = np.empty((n, amb, amb), dtype=complex)
        for i in range(n):
            x_si = evaluate_map(c, self.pattern, ss[i], 1.0)
            mats[i] = np.hstack([x_si, ks[i]])
        return mats, ss

    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        mats, _ = self._matrices(self.to_matrix(x), t)
        return np.linalg.det(mats)

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_and_jacobian_x(x, t)[1]

    def evaluate_and_jacobian_x(self, x, t):
        c = self.to_matrix(x)
        mats, ss = self._matrices(c, t)
        n, amb, _ = mats.shape
        minors = mats[:, self._minor_rows, self._minor_cols]
        dets = np.linalg.det(minors.reshape(n * amb * amb, amb - 1, amb - 1))
        cofs = self._minor_signs[None] * dets.reshape(n, amb, amb)
        res = np.einsum("ej,ej->e", mats[:, 0, :], cofs[:, 0, :])
        gathered = cofs[:, self._free_i, self._free_j]
        spow = np.power(
            np.asarray(ss)[:, None], self._free_l[None, :]
        )  # (n, nfree): s_i(t)^l, s0 = 1 throughout
        return res, gathered * spow


def continue_to_instance(
    start: PieriInstance,
    start_solutions: Sequence[np.ndarray],
    target: PieriInstance,
    options: TrackerOptions | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[List[np.ndarray], List[PathResult]]:
    """Track a solved instance's solutions to a new instance.

    Returns ``(solutions, path_results)``; solutions are renormalized to
    the standard chart.  Only ``d(m, p, q)`` paths are tracked — compare
    with the full tree's job count for the offline/online cost split.
    """
    homotopy = PieriParameterHomotopy(start, target, rng)
    tracker = PathTracker(options or TrackerOptions(
        initial_step=0.02, max_step=0.08, corrector_tol=1e-10
    ))
    solutions: List[np.ndarray] = []
    results: List[PathResult] = []
    for k, sol in enumerate(start_solutions):
        x0 = homotopy.from_matrix(np.asarray(sol, dtype=complex))
        result = tracker.track(homotopy, x0, path_id=k)
        results.append(result)
        if result.success:
            matrix = homotopy.to_matrix(result.solution)
            try:
                matrix = normalize_to_standard_chart(matrix, homotopy.pattern)
            except ZeroDivisionError:
                continue
            solutions.append(matrix)
    return solutions, results
