"""Coefficient-parameter continuation between Pieri instances (cheater's
homotopy).

The Pieri tree solves one *general* instance from scratch with
``sum(level counts)`` paths (252 for the paper's (3,2,1) cell).  But once
any general instance is solved, every further instance of the same
(m, p, q) costs only ``d(m, p, q)`` paths (55 for that cell): deform the
planes and interpolation points along

    K_i(t) = (1-t) gamma_i K_i^start + t K_i^target
    s_i(t) = (1-t) s_i^start + t s_i^target + t (1-t) delta_i

and track each known solution.  Scaling a plane's basis by ``gamma_i``
does not change the plane, so the start conditions are untouched; the
points take a bent complex detour ``delta_i`` (vanishing at both ends)
because scaling *would* move them.  This is how the paper's framework serves
pole placement in practice — the expensive tree solve happens offline on
general data; placing poles for a *specific* machine is the cheap online
step ("A target root is used as the start root for the next iteration",
Fig 6).

The start solutions must be the full solution set of the start instance
(otherwise endpoints may be missed); with the gamma twists the deformation
avoids the discriminant with probability one and endpoints remain distinct.
"""

from __future__ import annotations

import dataclasses
from typing import List, Literal, Sequence

import numpy as np

from ..tracker import (
    BatchHomotopy,
    BatchTracker,
    HomotopyFunction,
    PathResult,
    PathStatus,
    PathTracker,
    TrackerOptions,
    retrack_duplicate_clusters,
    tighten_options,
)
from ..linalg import batched_det
from ..tracker.interface import _per_path_t
from ..tracker.stacked import StackedHomotopy
from .homotopy import normalize_to_standard_chart
from .patterns import LocalizationPattern
from .poset import PieriPoset
from .solver import PieriInstance

__all__ = [
    "PieriParameterHomotopy",
    "PieriParameterStack",
    "continue_to_instance",
    "continue_to_instances",
]


class PieriParameterHomotopy(HomotopyFunction, BatchHomotopy):
    """H(x, t): root-pattern solutions deformed between two instances.

    Unknowns are the free coefficients of the *root* localization pattern
    in the standard chart (bottom pivots pinned to 1); all N conditions
    move simultaneously.

    Implements both tracker protocols: the online phase tracks all
    ``d(m, p, q)`` known solutions at once, so the batched methods carry
    a leading path axis (each path at its own t) and the scalar methods
    run through them as one-row batches — scalar and batched tracking
    see bit-identical arithmetic.
    """

    def __init__(
        self,
        start: PieriInstance,
        target: PieriInstance,
        rng: np.random.Generator | None = None,
    ) -> None:
        if start.problem != target.problem:
            raise ValueError("instances must share the same (m, p, q)")
        self.problem = start.problem
        self.start = start
        self.target = target
        rng = np.random.default_rng() if rng is None else rng
        n = self.problem.num_conditions
        self.gamma_k = np.exp(2j * np.pi * rng.random(n))
        # complex detour for the points, zero at t = 0 and t = 1
        self.delta_s = 0.5 * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        )

        self.pattern: LocalizationPattern = PieriPoset.build(
            self.problem
        ).root()
        amb = self.problem.ambient
        # chart: all bottom pivots pinned to 1; the rest of the support free
        pinned = {
            (b - 1, j) for j, b in enumerate(self.pattern.bottom_pivots)
        }
        self._free = sorted(
            (r - 1, j - 1)
            for r, j in self.pattern.support()
            if (r - 1, j - 1) not in pinned
        )
        self._amb = amb
        self._pinned = pinned
        # precomputed gather tables (as in PieriEdgeHomotopy)
        self._free_l = np.array([r // amb for r, _ in self._free])
        self._free_i = np.array([r % amb for r, _ in self._free])
        self._free_j = np.array([j for _, j in self._free])
        idx = np.arange(amb)
        keep = np.array([np.delete(idx, i) for i in range(amb)])
        # the Jacobian only needs cofactors at the free (i, j) positions:
        # precompute minor index tables for the unique ones (<= dim of
        # them) instead of the full amb x amb cofactor matrix
        pos = np.stack([self._free_i, self._free_j], axis=1)
        uniq, inverse = np.unique(pos, axis=0, return_inverse=True)
        self._cof_rows = keep[uniq[:, 0]][:, :, None]
        self._cof_cols = keep[uniq[:, 1]][:, None, :]
        self._cof_signs = (-1.0) ** (uniq[:, 0] + uniq[:, 1])
        self._cof_gather = inverse
        # scatter tables and stacked deformation endpoints for the
        # batched kernels
        pinned_sorted = sorted(pinned)
        self._pinned_rows = np.array([r for r, _ in pinned_sorted])
        self._pinned_cols = np.array([j for _, j in pinned_sorted])
        self._free_rows = np.array([r for r, _ in self._free])
        self._free_cols = np.array([j for _, j in self._free])
        self._n_blocks = self.problem.nrows // amb
        self._k0 = self.gamma_k[:, None, None] * np.stack(start.planes)
        self._k1 = np.stack(target.planes).astype(complex)
        self._s0 = np.array(start.points, dtype=complex)
        self._s1 = np.array(target.points, dtype=complex)

    @property
    def dim(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------------
    def to_matrix(self, x: np.ndarray) -> np.ndarray:
        return self.to_matrix_batch(np.asarray(x, dtype=complex)[None, :])[0]

    def to_matrix_batch(self, X: np.ndarray) -> np.ndarray:
        """Scatter a stack of unknown vectors, shape (npaths, nrows, p)."""
        X = np.asarray(X, dtype=complex)
        if X.ndim != 2 or X.shape[1] != self.dim:
            raise ValueError(f"expected X of shape (npaths, {self.dim})")
        c = np.zeros(
            (X.shape[0], self.problem.nrows, self.problem.p), dtype=complex
        )
        c[:, self._pinned_rows, self._pinned_cols] = 1.0
        c[:, self._free_rows, self._free_cols] = X
        return c

    def from_matrix(self, c: np.ndarray) -> np.ndarray:
        return np.array([c[row, j] for row, j in self._free], dtype=complex)

    def _paths_at(self, t: float):
        """Scalar deformation snapshot (kept for inspection and tests)."""
        ks, ss = [], []
        for i in range(self.problem.num_conditions):
            ks.append(
                (1.0 - t) * self.gamma_k[i] * self.start.planes[i]
                + t * self.target.planes[i]
            )
            ss.append(
                (1.0 - t) * self.start.points[i]
                + t * self.target.points[i]
                + t * (1.0 - t) * self.delta_s[i]
            )
        return ks, ss

    def _paths_at_batch(self, tt: np.ndarray):
        """All N deformed conditions for every path's own t."""
        w0 = (1.0 - tt)[:, None, None, None]
        w1 = tt[:, None, None, None]
        ks = w0 * self._k0 + w1 * self._k1  # (npaths, n, amb, m)
        ss = (
            (1.0 - tt)[:, None] * self._s0
            + tt[:, None] * self._s1
            + (tt * (1.0 - tt))[:, None] * self.delta_s
        )  # (npaths, n)
        return ks, ss

    def _matrices(self, c: np.ndarray, tt: np.ndarray):
        """Condition-matrix stacks (npaths, n, amb, amb) plus s values.

        The map columns are assembled in one einsum over the degree
        blocks (entries above a column's support vanish by the pattern,
        so the full-block sum equals the per-degree sum at s0 = 1).
        """
        ks, ss = self._paths_at_batch(tt)
        npaths = c.shape[0]
        n = self.problem.num_conditions
        amb = self._amb
        p = self.problem.p
        blocks = c.reshape(npaths, self._n_blocks, amb, p)
        spow = ss[:, :, None] ** np.arange(self._n_blocks)
        mats = np.empty((npaths, n, amb, amb), dtype=complex)
        mats[..., :p] = np.einsum("pcl,plar->pcar", spow, blocks)
        mats[..., p:] = ks
        return mats, ss

    # ------------------------------------------------------------------
    # BatchHomotopy protocol (scalar methods run through it, one row)
    # ------------------------------------------------------------------
    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        mats, _ = self._matrices(self.to_matrix_batch(X), tt)
        return batched_det(mats)

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(X, t)[1]

    def evaluate_and_jacobian_batch(self, X, t):
        X = np.asarray(X, dtype=complex)
        tt = _per_path_t(t, X.shape[0])
        c = self.to_matrix_batch(X)
        mats, ss = self._matrices(c, tt)
        amb = self._amb
        res = batched_det(mats)
        minors = mats[:, :, self._cof_rows, self._cof_cols]
        dets = batched_det(minors.reshape(-1, amb - 1, amb - 1))
        cofs = self._cof_signs * dets.reshape(minors.shape[:3])
        gathered = cofs[:, :, self._cof_gather]
        spow = ss[:, :, None] ** self._free_l  # s_i(t)^l, s0 = 1 throughout
        return res, gathered * spow

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_batch(np.asarray(x, dtype=complex)[None, :], t)[0]

    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        return self.evaluate_and_jacobian_x(x, t)[1]

    def evaluate_and_jacobian_x(self, x, t):
        res, jac = self.evaluate_and_jacobian_batch(
            np.asarray(x, dtype=complex)[None, :], t
        )
        return res[0], jac[0]


def continue_to_instance(
    start: PieriInstance,
    start_solutions: Sequence[np.ndarray],
    target: PieriInstance,
    options: TrackerOptions | None = None,
    rng: np.random.Generator | None = None,
    mode: Literal["per_path", "batch"] = "per_path",
) -> tuple[List[np.ndarray], List[PathResult]]:
    """Track a solved instance's solutions to a new instance.

    Returns ``(solutions, path_results)``; solutions are renormalized to
    the standard chart.  Only ``d(m, p, q)`` paths are tracked — compare
    with the full tree's job count for the offline/online cost split.

    ``mode="batch"`` tracks all paths as one structure-of-arrays front
    (the homotopy's native batch protocol); ``"per_path"`` is the scalar
    baseline.  Per-path decisions are identical either way.

    An endpoint whose chart normalization hits a zero pivot (the
    solution fits a child pattern — non-generic target data) is recorded
    as a FAILED path result rather than silently dropped, so
    ``len(results)`` always equals the number of start solutions and
    ``sum(r.success) == len(solutions)``.
    """
    if mode not in ("per_path", "batch"):
        raise ValueError(f"unknown mode {mode!r}")
    homotopy = PieriParameterHomotopy(start, target, rng)
    opts = options or TrackerOptions(
        initial_step=0.02, max_step=0.08, corrector_tol=1e-10
    )
    x0s = [
        homotopy.from_matrix(np.asarray(sol, dtype=complex))
        for sol in start_solutions
    ]
    if mode == "batch":
        raw = BatchTracker(opts).track_batch(homotopy, x0s)
    else:
        tracker = PathTracker(opts)
        raw = [
            tracker.track(homotopy, x0, path_id=k)
            for k, x0 in enumerate(x0s)
        ]
    # endpoint collisions would silently merge two feedback laws: the
    # deformation's endpoints are provably distinct, so a collision is a
    # predictor jump — separate it through the shared escalation loop
    retrack_duplicate_clusters(
        raw,
        lambda pid, o: PathTracker(o).track(homotopy, x0s[pid], path_id=pid),
        tighten_options,
        opts,
    )
    solutions: List[np.ndarray] = []
    results: List[PathResult] = []
    for result in raw:
        if result.success:
            matrix = homotopy.to_matrix(result.solution)
            try:
                matrix = normalize_to_standard_chart(matrix, homotopy.pattern)
            except ZeroDivisionError:
                result = dataclasses.replace(result, status=PathStatus.FAILED)
            else:
                solutions.append(matrix)
        results.append(result)
    return solutions, results


class PieriParameterStack(StackedHomotopy):
    """Same-structure specialization of :class:`StackedHomotopy`.

    A generic :class:`StackedHomotopy` front dispatches every batched
    call member by member — correct for heterogeneous members, but when
    every member is a :class:`PieriParameterHomotopy` warm-started from
    the *same* solved generic instance (the serving layer's grouped
    queries), all members share one localization pattern and only their
    deformation *endpoints* differ.  This subclass hoists those
    endpoints into per-path arrays indexed by the ownership vector, so
    the whole cross-request front — B queries x d(m, p, q) paths each —
    evaluates in one vectorized chain per tracker sweep instead of B
    separate ones.  Per-path arithmetic is identical to the member's own
    batched methods; only the loop structure changes.
    """

    def __init__(
        self,
        members: Sequence[PieriParameterHomotopy],
        owners: Sequence[int],
    ) -> None:
        if not members:
            raise ValueError("need at least one member homotopy")
        root = members[0]
        for member in members:
            if not isinstance(member, PieriParameterHomotopy):
                raise TypeError(
                    "PieriParameterStack members must be "
                    "PieriParameterHomotopy instances"
                )
            if member.problem != root.problem:
                raise ValueError("members must share one (m, p, q)")
        super().__init__(members, owners)
        own = self.owners
        # per-path deformation endpoints: row r follows owner own[r]
        self._k0 = np.stack([members[o]._k0 for o in own])
        self._k1 = np.stack([members[o]._k1 for o in own])
        self._s0 = np.stack([members[o]._s0 for o in own])
        self._s1 = np.stack([members[o]._s1 for o in own])
        self._delta = np.stack([members[o].delta_s for o in own])

    def restrict(self, rows) -> "PieriParameterStack":
        rows = np.asarray(rows, dtype=np.int64)
        view = object.__new__(PieriParameterStack)
        view.members = self.members
        owners = self.owners[rows]
        view.owners = owners
        groups = [
            (k, np.flatnonzero(owners == k)) for k in range(len(self.members))
        ]
        view._groups = [(k, r) for k, r in groups if r.size]
        for name in ("_k0", "_k1", "_s0", "_s1", "_delta"):
            setattr(view, name, getattr(self, name)[rows])
        return view

    # ------------------------------------------------------------------
    def _matrices(self, X: np.ndarray, tt: np.ndarray):
        """As :meth:`PieriParameterHomotopy._matrices`, per-path endpoints."""
        root = self.members[0]
        c = root.to_matrix_batch(X)
        w0 = (1.0 - tt)[:, None, None, None]
        w1 = tt[:, None, None, None]
        ks = w0 * self._k0 + w1 * self._k1
        ss = (
            (1.0 - tt)[:, None] * self._s0
            + tt[:, None] * self._s1
            + (tt * (1.0 - tt))[:, None] * self._delta
        )
        npaths = c.shape[0]
        amb = root._amb
        p = root.problem.p
        blocks = c.reshape(npaths, root._n_blocks, amb, p)
        spow = ss[:, :, None] ** np.arange(root._n_blocks)
        n = root.problem.num_conditions
        mats = np.empty((npaths, n, amb, amb), dtype=complex)
        mats[..., :p] = np.einsum("pcl,plar->pcar", spow, blocks)
        mats[..., p:] = ks
        return mats, ss

    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        mats, _ = self._matrices(X, tt)
        return batched_det(mats)

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        return self.evaluate_and_jacobian_batch(X, t)[1]

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        # the generic BatchHomotopy finite difference runs through the
        # fused evaluate_batch — cheaper than the per-member loop
        return BatchHomotopy.jacobian_t_batch(self, X, t)

    def jacobians_batch(self, X, t):
        return BatchHomotopy.jacobians_batch(self, X, t)

    def evaluate_and_jacobian_batch(self, X, t):
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        root = self.members[0]
        amb = root._amb
        mats, ss = self._matrices(X, tt)
        res = batched_det(mats)
        minors = mats[:, :, root._cof_rows, root._cof_cols]
        dets = batched_det(minors.reshape(-1, amb - 1, amb - 1))
        cofs = root._cof_signs * dets.reshape(minors.shape[:3])
        gathered = cofs[:, :, root._cof_gather]
        return res, gathered * (ss[:, :, None] ** root._free_l)

    def __repr__(self) -> str:
        return (
            f"PieriParameterStack({len(self.members)} queries, "
            f"{self.npaths} paths, dim={self.dim})"
        )


def continue_to_instances(
    start: PieriInstance,
    start_solutions: Sequence[np.ndarray],
    targets: Sequence[PieriInstance],
    options: TrackerOptions | None = None,
    rng: np.random.Generator | None = None,
) -> List[tuple[List[np.ndarray], List[PathResult]]]:
    """Track one solved instance to *many* targets as one stacked front.

    The cross-request analogue of :func:`continue_to_instance`: B
    same-shape queries warm-started from one cached generic instance are
    tracked together as a single :class:`PieriParameterStack` —
    ``B * d(m, p, q)`` paths in one structure-of-arrays front, so the
    per-sweep numpy dispatch cost is shared by every query.  Returns one
    ``(solutions, path_results)`` pair per target, each identical in
    content to a sequential :func:`continue_to_instance` call modulo the
    rng draws for the gamma twists.
    """
    if not targets:
        return []
    rng = np.random.default_rng() if rng is None else rng
    opts = options or TrackerOptions(
        initial_step=0.02, max_step=0.08, corrector_tol=1e-10
    )
    members = [PieriParameterHomotopy(start, tgt, rng) for tgt in targets]
    x0s_one = [
        members[0].from_matrix(np.asarray(sol, dtype=complex))
        for sol in start_solutions
    ]
    d = len(x0s_one)
    owners: List[int] = []
    x0s: List[np.ndarray] = []
    for k in range(len(targets)):
        owners.extend([k] * d)
        x0s.extend(x0s_one)
    stack = PieriParameterStack(members, owners)
    raw = BatchTracker(opts).track_batch(stack, x0s)
    # duplicate-endpoint separation is a per-query question: two paths
    # of different queries may legitimately coincide
    for k, member in enumerate(members):
        rows = list(range(k * d, (k + 1) * d))
        group = [raw[i] for i in rows]
        retrack_duplicate_clusters(
            group,
            lambda pid, o, m=member: PathTracker(o).track(
                m, x0s_one[pid], path_id=pid
            ),
            tighten_options,
            opts,
        )
        for i, result in zip(rows, group):
            raw[i] = result
    out: List[tuple[List[np.ndarray], List[PathResult]]] = []
    for k, member in enumerate(members):
        solutions: List[np.ndarray] = []
        results: List[PathResult] = []
        for result in raw[k * d : (k + 1) * d]:
            if result.success:
                matrix = member.to_matrix(result.solution)
                try:
                    matrix = normalize_to_standard_chart(
                        matrix, member.pattern
                    )
                except ZeroDivisionError:
                    result = dataclasses.replace(
                        result, status=PathStatus.FAILED
                    )
                else:
                    solutions.append(matrix)
            results.append(result)
        out.append((solutions, results))
    return out
