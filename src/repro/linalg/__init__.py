"""Dense complex linear-algebra helpers shared by the Schubert and control layers."""

from .dets import adjugate, batched_det, cofactor_matrix, det_and_cofactors
from .planes import (
    orth_basis,
    plane_distance,
    random_complex_matrix,
    random_plane,
    random_unitary,
    subspace_angle,
)
from .polymat import (
    PolyMatrix,
    charpoly_coefficients,
    resolvent_numerator,
)

__all__ = [
    "adjugate",
    "batched_det",
    "cofactor_matrix",
    "det_and_cofactors",
    "orth_basis",
    "plane_distance",
    "random_complex_matrix",
    "random_plane",
    "random_unitary",
    "subspace_angle",
    "PolyMatrix",
    "charpoly_coefficients",
    "resolvent_numerator",
]
