"""Random planes, unitaries and subspace geometry in complex space.

The pole placement problem takes *general* m-planes in C^{m+p} as input;
"general" means drawn from a continuous distribution so that all Schubert
intersections are transversal with probability one.  These helpers generate
such planes and measure distances between subspaces for verification.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_complex_matrix",
    "random_unitary",
    "random_plane",
    "orth_basis",
    "plane_distance",
    "subspace_angle",
]


def random_complex_matrix(
    rows: int, cols: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Gaussian complex matrix with unit-variance entries."""
    rng = np.random.default_rng() if rng is None else rng
    return (rng.standard_normal((rows, cols)) + 1j * rng.standard_normal((rows, cols))) / np.sqrt(2)


def random_unitary(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Haar-distributed unitary via QR of a complex Gaussian matrix."""
    z = random_complex_matrix(n, n, rng)
    q, r = np.linalg.qr(z)
    # fix the phase ambiguity so the distribution is exactly Haar
    d = np.diagonal(r)
    ph = d / np.abs(d)
    return q * ph[None, :]


def random_plane(
    ambient: int, dim: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """A random ``dim``-plane in C^ambient as an (ambient, dim) basis matrix."""
    if not 0 < dim <= ambient:
        raise ValueError("need 0 < dim <= ambient")
    return random_unitary(ambient, rng)[:, :dim]


def orth_basis(matrix: np.ndarray) -> np.ndarray:
    """Orthonormal basis of the column span (QR with rank check)."""
    m = np.asarray(matrix, dtype=complex)
    q, r = np.linalg.qr(m)
    diag = np.abs(np.diagonal(r))
    tol = max(m.shape) * np.finfo(float).eps * (diag.max() if diag.size else 0.0)
    rank = int(np.sum(diag > tol))
    if rank < m.shape[1]:
        raise ValueError(f"matrix has rank {rank} < {m.shape[1]} columns")
    return q


def plane_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Gap metric between two subspaces: ``||P_A - P_B||_2`` in [0, 1]."""
    qa = orth_basis(np.asarray(a, dtype=complex))
    qb = orth_basis(np.asarray(b, dtype=complex))
    pa = qa @ qa.conj().T
    pb = qb @ qb.conj().T
    return float(np.linalg.norm(pa - pb, ord=2))


def subspace_angle(a: np.ndarray, b: np.ndarray) -> float:
    """Largest principal angle between the column spans, in radians."""
    qa = orth_basis(np.asarray(a, dtype=complex))
    qb = orth_basis(np.asarray(b, dtype=complex))
    sv = np.linalg.svd(qa.conj().T @ qb, compute_uv=False)
    sv = np.clip(sv, 0.0, 1.0)
    return float(np.arccos(sv.min() if sv.size else 1.0))
