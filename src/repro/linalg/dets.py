"""Determinants, cofactors and adjugates of small complex matrices.

The Pieri intersection conditions are determinants ``det[X(s) | K]`` of
matrices of size ``m+p`` (at most 8 in the paper's experiments).  Newton's
method needs the *gradient* of a determinant:

    d det(M) / d M[i, j] = cofactor(M)[i, j]

Jacobi's formula ``det(M) * trace(M^{-1} dM)`` degenerates exactly where we
need it most (at solutions, where ``det(M) -> 0``), so the cofactor matrix is
computed directly from stacked minors in one vectorized ``numpy.linalg.det``
call — numerically stable for nearly singular ``M`` and fast because numpy
batches the LU factorizations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cofactor_matrix", "adjugate", "det_and_cofactors"]


def _minor_stack(matrix: np.ndarray) -> np.ndarray:
    """All (n^2) minors of an n x n matrix, stacked as (n, n, n-1, n-1)."""
    n = matrix.shape[0]
    if n == 1:
        return np.ones((1, 1, 0, 0), dtype=matrix.dtype)
    # index helpers: rows_without[i] = the n-1 row indices skipping i
    idx = np.arange(n)
    keep = np.array([np.delete(idx, i) for i in range(n)])  # (n, n-1)
    # minors[i, j] = matrix with row i and column j removed
    rows = keep[:, None, :, None]  # (n, 1, n-1, 1)
    cols = keep[None, :, None, :]  # (1, n, 1, n-1)
    return matrix[rows, cols]


def cofactor_matrix(matrix: np.ndarray) -> np.ndarray:
    """The cofactor matrix C with C[i, j] = (-1)^(i+j) * minor(i, j).

    ``d det(M)/d M[i, j] = C[i, j]`` and ``adj(M) = C.T``.
    """
    m = np.asarray(matrix, dtype=complex)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError("cofactor_matrix expects a square matrix")
    n = m.shape[0]
    if n == 1:
        return np.ones((1, 1), dtype=complex)
    minors = _minor_stack(m)
    dets = np.linalg.det(minors.reshape(n * n, n - 1, n - 1)).reshape(n, n)
    signs = (-1.0) ** (np.add.outer(np.arange(n), np.arange(n)))
    return signs * dets


def adjugate(matrix: np.ndarray) -> np.ndarray:
    """The adjugate (classical adjoint): ``adj(M) @ M = det(M) * I``."""
    return cofactor_matrix(matrix).T


def det_and_cofactors(matrix: np.ndarray) -> tuple[complex, np.ndarray]:
    """Determinant together with the full cofactor matrix.

    The determinant is recovered from the cofactor expansion along the first
    row, which reuses the minors already computed and keeps the two values
    exactly consistent (important for Newton residual/gradient pairs).
    """
    cof = cofactor_matrix(matrix)
    m = np.asarray(matrix, dtype=complex)
    det = complex(np.dot(m[0, :], cof[0, :]))
    return det, cof
