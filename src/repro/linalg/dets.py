"""Determinants, cofactors and adjugates of small complex matrices.

The Pieri intersection conditions are determinants ``det[X(s) | K]`` of
matrices of size ``m+p`` (at most 8 in the paper's experiments).  Newton's
method needs the *gradient* of a determinant:

    d det(M) / d M[i, j] = cofactor(M)[i, j]

Jacobi's formula ``det(M) * trace(M^{-1} dM)`` degenerates exactly where we
need it most (at solutions, where ``det(M) -> 0``), so the cofactor matrix is
computed directly from stacked minors in one vectorized ``numpy.linalg.det``
call — numerically stable for nearly singular ``M`` and fast because numpy
batches the LU factorizations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batched_det", "cofactor_matrix", "adjugate", "det_and_cofactors"]


def batched_det(mats: np.ndarray) -> np.ndarray:
    """Determinants of a ``(..., k, k)`` stack of small matrices.

    For ``k <= 4`` the determinant is expanded in closed form — pure
    elementwise arithmetic over the stack, which beats
    :func:`numpy.linalg.det`'s per-matrix LAPACK dispatch by an order of
    magnitude on the tiny matrices the Pieri conditions produce (m+p is
    at most 8 in the paper's experiments, and minors are one smaller).
    Larger sizes fall back to numpy's batched LU.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((5, 4, 4)) + 1j * rng.standard_normal((5, 4, 4))
    >>> np.allclose(batched_det(a), np.linalg.det(a))
    True
    """
    a = np.asarray(mats)
    if a.ndim < 2 or a.shape[-2] != a.shape[-1]:
        raise ValueError("expected a stack of square matrices")
    k = a.shape[-1]
    if k == 0:
        return np.ones(a.shape[:-2], dtype=a.dtype)
    if k == 1:
        return a[..., 0, 0]
    if k == 2:
        return a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
    if k == 3:
        return (
            a[..., 0, 0]
            * (a[..., 1, 1] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 1])
            - a[..., 0, 1]
            * (a[..., 1, 0] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 0])
            + a[..., 0, 2]
            * (a[..., 1, 0] * a[..., 2, 1] - a[..., 1, 1] * a[..., 2, 0])
        )
    if k == 4:
        # Laplace expansion along the first two rows: pair each 2x2 minor
        # of rows (0, 1) with the complementary minor of rows (2, 3)
        def top(i, j):
            return a[..., 0, i] * a[..., 1, j] - a[..., 0, j] * a[..., 1, i]

        def bot(i, j):
            return a[..., 2, i] * a[..., 3, j] - a[..., 2, j] * a[..., 3, i]

        return (
            top(0, 1) * bot(2, 3)
            - top(0, 2) * bot(1, 3)
            + top(0, 3) * bot(1, 2)
            + top(1, 2) * bot(0, 3)
            - top(1, 3) * bot(0, 2)
            + top(2, 3) * bot(0, 1)
        )
    return np.linalg.det(a)


def _minor_stack(matrix: np.ndarray) -> np.ndarray:
    """All (n^2) minors of an n x n matrix, stacked as (n, n, n-1, n-1)."""
    n = matrix.shape[0]
    if n == 1:
        return np.ones((1, 1, 0, 0), dtype=matrix.dtype)
    # index helpers: rows_without[i] = the n-1 row indices skipping i
    idx = np.arange(n)
    keep = np.array([np.delete(idx, i) for i in range(n)])  # (n, n-1)
    # minors[i, j] = matrix with row i and column j removed
    rows = keep[:, None, :, None]  # (n, 1, n-1, 1)
    cols = keep[None, :, None, :]  # (1, n, 1, n-1)
    return matrix[rows, cols]


def cofactor_matrix(matrix: np.ndarray) -> np.ndarray:
    """The cofactor matrix C with C[i, j] = (-1)^(i+j) * minor(i, j).

    ``d det(M)/d M[i, j] = C[i, j]`` and ``adj(M) = C.T``.
    """
    m = np.asarray(matrix, dtype=complex)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError("cofactor_matrix expects a square matrix")
    n = m.shape[0]
    if n == 1:
        return np.ones((1, 1), dtype=complex)
    minors = _minor_stack(m)
    dets = np.linalg.det(minors.reshape(n * n, n - 1, n - 1)).reshape(n, n)
    signs = (-1.0) ** (np.add.outer(np.arange(n), np.arange(n)))
    return signs * dets


def adjugate(matrix: np.ndarray) -> np.ndarray:
    """The adjugate (classical adjoint): ``adj(M) @ M = det(M) * I``."""
    return cofactor_matrix(matrix).T


def det_and_cofactors(matrix: np.ndarray) -> tuple[complex, np.ndarray]:
    """Determinant together with the full cofactor matrix.

    The determinant is recovered from the cofactor expansion along the first
    row, which reuses the minors already computed and keeps the two values
    exactly consistent (important for Newton residual/gradient pairs).
    """
    cof = cofactor_matrix(matrix)
    m = np.asarray(matrix, dtype=complex)
    det = complex(np.dot(m[0, :], cof[0, :]))
    return det, cof
