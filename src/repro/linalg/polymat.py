"""Univariate polynomial matrices and the Faddeev-LeVerrier recursion.

The control layer verifies closed-loop poles through the polynomial matrix

    K(s) = [ C * adj(sI - A) * B ]
           [ chi_A(s) * I_m      ]

whose column span at ``s`` equals ``[C (sI-A)^{-1} B; I]`` wherever
``chi_A(s) != 0``.  The numerator ``C adj(sI - A) B`` and the characteristic
polynomial come out of one Faddeev-LeVerrier recursion; :class:`PolyMatrix`
stores matrix coefficients per power of ``s`` and supports the little
algebra (evaluate, add, multiply, determinant by interpolation) needed for
verification and for realizing dynamic compensators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["PolyMatrix", "charpoly_coefficients", "resolvent_numerator"]


class PolyMatrix:
    """Matrix polynomial  M(s) = sum_k coeffs[k] * s**k.

    ``coeffs`` is a sequence of equally-shaped 2-D complex arrays, constant
    term first.  Trailing zero coefficients are trimmed on construction.
    """

    def __init__(self, coeffs: Sequence[np.ndarray]) -> None:
        mats = [np.asarray(c, dtype=complex) for c in coeffs]
        if not mats:
            raise ValueError("need at least one coefficient matrix")
        shape = mats[0].shape
        if len(shape) != 2 or any(m.shape != shape for m in mats):
            raise ValueError("all coefficients must be 2-D with equal shape")
        while len(mats) > 1 and not np.any(mats[-1]):
            mats.pop()
        self._coeffs = mats

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._coeffs[0].shape

    @property
    def degree(self) -> int:
        return len(self._coeffs) - 1

    def coefficient(self, k: int) -> np.ndarray:
        if 0 <= k < len(self._coeffs):
            return self._coeffs[k].copy()
        return np.zeros(self.shape, dtype=complex)

    def __call__(self, s: complex) -> np.ndarray:
        out = np.zeros(self.shape, dtype=complex)
        power = 1.0 + 0j
        for c in self._coeffs:
            out += c * power
            power *= s
        return out

    # ------------------------------------------------------------------
    def __add__(self, other: "PolyMatrix") -> "PolyMatrix":
        if self.shape != other.shape:
            raise ValueError("shape mismatch")
        n = max(len(self._coeffs), len(other._coeffs))
        out = []
        for k in range(n):
            out.append(self.coefficient(k) + other.coefficient(k))
        return PolyMatrix(out)

    def __sub__(self, other: "PolyMatrix") -> "PolyMatrix":
        return self + (other * (-1.0))

    def __mul__(self, scalar: complex) -> "PolyMatrix":
        return PolyMatrix([c * scalar for c in self._coeffs])

    __rmul__ = __mul__

    def __matmul__(self, other: "PolyMatrix") -> "PolyMatrix":
        if self.shape[1] != other.shape[0]:
            raise ValueError("inner dimensions do not match")
        deg = self.degree + other.degree
        out = [
            np.zeros((self.shape[0], other.shape[1]), dtype=complex)
            for _ in range(deg + 1)
        ]
        for i, a in enumerate(self._coeffs):
            for j, b in enumerate(other._coeffs):
                out[i + j] += a @ b
        return PolyMatrix(out)

    def hstack(self, other: "PolyMatrix") -> "PolyMatrix":
        """Horizontal concatenation [self | other]."""
        if self.shape[0] != other.shape[0]:
            raise ValueError("row counts differ")
        n = max(len(self._coeffs), len(other._coeffs))
        return PolyMatrix(
            [
                np.hstack([self.coefficient(k), other.coefficient(k)])
                for k in range(n)
            ]
        )

    def vstack(self, other: "PolyMatrix") -> "PolyMatrix":
        if self.shape[1] != other.shape[1]:
            raise ValueError("column counts differ")
        n = max(len(self._coeffs), len(other._coeffs))
        return PolyMatrix(
            [
                np.vstack([self.coefficient(k), other.coefficient(k)])
                for k in range(n)
            ]
        )

    # ------------------------------------------------------------------
    def determinant_coefficients(self, degree_bound: int | None = None) -> np.ndarray:
        """Coefficients of det(M(s)) (constant term first) by interpolation.

        ``det`` of an n x n polynomial matrix of degree d has degree at most
        n*d; we sample on a scaled unit circle and solve the Vandermonde
        system with an inverse FFT, which is well conditioned.
        """
        n = self.shape[0]
        if n != self.shape[1]:
            raise ValueError("determinant of a non-square polynomial matrix")
        bound = n * self.degree if degree_bound is None else int(degree_bound)
        npts = bound + 1
        # scale radius to balance coefficient magnitudes
        radius = 1.0
        nodes = radius * np.exp(2j * np.pi * np.arange(npts) / npts)
        values = np.array([np.linalg.det(self(z)) for z in nodes])
        # nodes are exp(+2*pi*i*j/npts), so coefficient k is fft(values)[k]/npts
        coeffs = np.fft.fft(values) / npts / (radius ** np.arange(npts))
        return coeffs

    @staticmethod
    def constant(matrix: np.ndarray) -> "PolyMatrix":
        return PolyMatrix([np.asarray(matrix, dtype=complex)])

    @staticmethod
    def identity_times_poly(n: int, poly_coeffs: Sequence[complex]) -> "PolyMatrix":
        """``p(s) * I_n`` from scalar coefficients (constant first)."""
        eye = np.eye(n, dtype=complex)
        return PolyMatrix([c * eye for c in poly_coeffs])

    def __repr__(self) -> str:
        return f"PolyMatrix(shape={self.shape}, degree={self.degree})"


def charpoly_coefficients(a: np.ndarray) -> np.ndarray:
    """Coefficients of chi_A(s) = det(sI - A), constant term first.

    Faddeev-LeVerrier: exact in exact arithmetic, adequate in double
    precision for the modest state dimensions used here.
    """
    a = np.asarray(a, dtype=complex)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("square matrix required")
    coeffs = np.zeros(n + 1, dtype=complex)
    coeffs[n] = 1.0
    m = np.zeros_like(a)
    for k in range(1, n + 1):
        m = a @ m + coeffs[n - k + 1] * np.eye(n, dtype=complex)
        coeffs[n - k] = -np.trace(a @ m) / k
    return coeffs


def resolvent_numerator(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[PolyMatrix, np.ndarray]:
    """``(C adj(sI-A) B, chi_A)`` via Faddeev-LeVerrier.

    Returns the polynomial matrix ``N(s) = C adj(sI - A) B`` (so that
    ``C (sI-A)^{-1} B = N(s)/chi_A(s)``) and the characteristic polynomial
    coefficients (constant first).
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    c = np.asarray(c, dtype=complex)
    n = a.shape[0]
    chi = np.zeros(n + 1, dtype=complex)
    chi[n] = 1.0
    # adj(sI - A) = sum_{k=0}^{n-1} M_k s^k with the same recursion
    mk = np.eye(n, dtype=complex)  # coefficient of s^{n-1}
    adj_coeffs = [None] * n
    adj_coeffs[n - 1] = mk
    m = mk
    for k in range(1, n + 1):
        trace_term = -np.trace(a @ m) / k
        chi[n - k] = trace_term
        if k < n:
            m = a @ m + trace_term * np.eye(n, dtype=complex)
            adj_coeffs[n - 1 - k] = m
    numerator = PolyMatrix([c @ mk_ @ b for mk_ in adj_coeffs])
    return numerator, chi
