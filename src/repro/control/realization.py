"""State-space realization of dynamic compensators (right-MFD controller form).

A Pieri solution for q > 0 is a compensator transfer matrix given as a
right matrix-fraction description C(s) = Z(s) Y(s)^{-1} whose column
degrees mu_j sum to q.  The classical controller-form construction
(Kailath, *Linear Systems*, §6.4) turns it into a q-state realization
(A_c, B_c, C_c, D_c):

    Y(s) = Y_hc S(s) + Y_lc Psi(s),      S(s)   = diag(s^{mu_j})
    Z(s) = Z_hc S(s) + Z_lc Psi(s),      Psi(s) = block-diag [1, s, ..]^T

    D_c = Z_hc Y_hc^{-1}                       (direct feedthrough)
    A_c = A_0 - B_0 Y_hc^{-1} Y_lc,  B_c = B_0 Y_hc^{-1}
    C_c = Z_lc - D_c Y_lc

with (A_0, B_0) the Brunovsky shift pair satisfying
``(sI - A_0)^{-1} B_0 = Psi(s) S(s)^{-1}``.  Columns with mu_j = 0
contribute no states.  Y_hc must be invertible (column-reducedness) —
generic for Pieri solutions; a singular Y_hc raises.

This closes the verification loop for dynamic feedback: interconnecting
the realized compensator with the plant gives a (n + q)-state closed loop
whose *eigenvalues* must equal the N prescribed poles exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg import PolyMatrix
from .feedback import DynamicCompensator
from .statespace import StateSpace

__all__ = ["CompensatorRealization", "realize_compensator", "closed_loop_matrix"]


@dataclass(frozen=True)
class CompensatorRealization:
    """A state-space compensator  x_c' = A_c x_c + B_c y,  u = C_c x_c + D_c y."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    @property
    def n_states(self) -> int:
        return self.a.shape[0]

    def transfer(self, s: complex) -> np.ndarray:
        if self.n_states == 0:
            return self.d
        n = self.n_states
        return self.c @ np.linalg.solve(
            s * np.eye(n, dtype=complex) - self.a, self.b
        ) + self.d


def _column_degree(pm: PolyMatrix, j: int) -> int:
    for k in range(pm.degree, -1, -1):
        if np.any(np.abs(pm.coefficient(k)[:, j]) > 0):
            return k
    return 0


def realize_compensator(comp: DynamicCompensator) -> CompensatorRealization:
    """Controller-form realization of ``C(s) = Z(s) Y(s)^{-1}``."""
    y, z = comp.y, comp.z
    p = y.shape[1]
    m = z.shape[0]
    mus = [_column_degree(y, j) for j in range(p)]
    n_states = sum(mus)

    # highest-column-degree and low-order coefficient matrices
    y_hc = np.zeros((p, p), dtype=complex)
    z_hc = np.zeros((m, p), dtype=complex)
    for j, mu in enumerate(mus):
        y_hc[:, j] = y.coefficient(mu)[:, j]
        z_hc[:, j] = z.coefficient(mu)[:, j]
    try:
        y_hc_inv = np.linalg.inv(y_hc)
    except np.linalg.LinAlgError as exc:
        raise ValueError(
            "Y(s) is not column-reduced (highest-column-degree matrix "
            "singular); the MFD needs a preliminary column reduction"
        ) from exc
    d_c = z_hc @ y_hc_inv

    if n_states == 0:
        return CompensatorRealization(
            np.zeros((0, 0), dtype=complex),
            np.zeros((0, p), dtype=complex),
            np.zeros((m, 0), dtype=complex),
            d_c,
        )

    # low-order parts: Y_lc[:, state_cols], column block j holds the
    # coefficients of 1, s, ..., s^{mu_j - 1} of Y's column j
    y_lc = np.zeros((p, n_states), dtype=complex)
    z_lc = np.zeros((m, n_states), dtype=complex)
    offsets = np.cumsum([0] + mus[:-1])
    for j, mu in enumerate(mus):
        for k in range(mu):
            y_lc[:, offsets[j] + k] = y.coefficient(k)[:, j]
            z_lc[:, offsets[j] + k] = z.coefficient(k)[:, j]

    # Brunovsky pair: per-column chain z_i' = z_{i+1}, z_mu' = input_j
    a0 = np.zeros((n_states, n_states), dtype=complex)
    b0 = np.zeros((n_states, p), dtype=complex)
    for j, mu in enumerate(mus):
        off = offsets[j]
        for k in range(mu - 1):
            a0[off + k, off + k + 1] = 1.0
        if mu > 0:
            b0[off + mu - 1, j] = 1.0

    a_c = a0 - b0 @ y_hc_inv @ y_lc
    b_c = b0 @ y_hc_inv
    c_c = z_lc - d_c @ y_lc
    return CompensatorRealization(a_c, b_c, c_c, d_c)


def closed_loop_matrix(
    plant: StateSpace, comp: CompensatorRealization
) -> np.ndarray:
    """System matrix of the plant/compensator interconnection.

    Plant  x' = A x + B u, y = C x; compensator x_c' = A_c x_c + B_c y,
    u = C_c x_c + D_c y.  The closed loop has n + q states and its
    eigenvalues are the closed-loop poles — the definitive verification
    for dynamic output feedback.
    """
    a, b, c = plant.a, plant.b, plant.c
    top = np.hstack([a + b @ comp.d @ c, b @ comp.c])
    bottom = np.hstack([comp.b @ c, comp.a])
    return np.vstack([top, bottom])
