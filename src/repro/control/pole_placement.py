"""Pole placement via Pieri homotopies (the paper's application, §III-A).

The geometric dictionary (Brockett-Byrnes [2], Huber-Verschelde [9]):
``s`` is a closed-loop pole of the plant ``(A, B, C)`` under the compensator
``C(s) = Z(s) Y(s)^{-1}`` if and only if the p-plane map ``X(s) = [Y; Z](s)``
meets the m-plane

    K(s) = column span [ G(s) ]     with  G(s) = C (sI - A)^{-1} B,
                       [ I_m  ]

because  det [X | K] = det(Y - G Z)  (Schur complement), and

    chi_closed(s)  ∝  chi_A(s) * det( Y(s) - G(s) Z(s) ).

So prescribing the N = m*p + q*(m+p) closed-loop poles s_1..s_N turns pole
placement into exactly the Pieri problem: find all maps meeting the N
planes ``K(s_i)`` at the ``s_i``.  This module builds that
:class:`~repro.schubert.solver.PieriInstance`, runs the solver, extracts
feedback laws, and verifies them (eigenvalue check for q = 0; determinant
identity for every q).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..linalg import orth_basis
from ..schubert import PieriInstance, PieriProblem, PieriSolver, PieriPoset
from ..tracker import TrackerOptions
from .feedback import DynamicCompensator, StaticFeedbackLaw, extract_feedback
from .statespace import StateSpace, required_state_dimension

__all__ = [
    "pole_planes",
    "PolePlacementResult",
    "place_poles",
    "verify_law",
]


def pole_planes(
    plant: StateSpace, poles: Sequence[complex]
) -> List[np.ndarray]:
    """The m-planes K(s_i) = span [G(s_i); I_m], orthonormalized.

    Orthonormalizing does not change the span (hence not the intersection
    conditions) but keeps the determinant equations well scaled.
    """
    m = plant.n_inputs
    planes = []
    for s in poles:
        if plant.is_pole(s):
            raise ValueError(
                f"prescribed pole {s} is an open-loop pole; the transfer "
                "function is undefined there"
            )
        g = plant.transfer(complex(s))
        k = np.vstack([g, np.eye(m, dtype=complex)])
        planes.append(orth_basis(k))
    return planes


@dataclass
class PolePlacementResult:
    """All feedback laws placing the prescribed poles, with diagnostics."""

    plant: StateSpace
    poles: List[complex]
    q: int
    laws: List[StaticFeedbackLaw | DynamicCompensator] = field(
        default_factory=list
    )
    failures: int = 0
    expected_count: int = 0
    total_seconds: float = 0.0

    @property
    def n_laws(self) -> int:
        return len(self.laws)

    def proper_laws(self) -> List[StaticFeedbackLaw | DynamicCompensator]:
        """Laws usable as actual compensators (degenerate ones filtered).

        A dynamic solution is *degenerate* when its denominator Y(s) is
        singular at a prescribed pole (a boundary point of the compactified
        solution space); see DynamicCompensator.is_degenerate.
        """
        out = []
        for law in self.laws:
            if isinstance(law, DynamicCompensator) and law.is_degenerate(
                self.poles
            ):
                continue
            out.append(law)
        return out

    def max_pole_error(self, proper_only: bool = True) -> float:
        """Worst pole placement error over the (proper) laws."""
        laws = self.proper_laws() if proper_only else self.laws
        if not laws:
            return float("inf")
        return max(verify_law(self.plant, law, self.poles) for law in laws)


def verify_law(
    plant: StateSpace,
    law: StaticFeedbackLaw | DynamicCompensator,
    poles: Sequence[complex],
) -> float:
    """Verification metric for one feedback law.

    - static: max distance between the eigenvalues of ``A + B F C`` and the
      prescribed pole multiset (the definitive end-to-end check);
    - dynamic: max over prescribed poles of the normalized determinant
      residual ``|det[X(s_i) | K(s_i)]|`` (zero iff s_i is a closed-loop
      pole, given ``det Y(s_i) != 0`` which is also checked).
    """
    if isinstance(law, StaticFeedbackLaw):
        return law.pole_error(plant, poles)
    m = plant.n_inputs
    worst = 0.0
    for s in poles:
        g = plant.transfer(complex(s))
        k = np.vstack([g, np.eye(m, dtype=complex)])
        x_s = np.vstack([law.y(complex(s)), law.z(complex(s))])
        mat = np.hstack([x_s, k])
        scale = np.prod(
            [max(np.linalg.norm(mat[:, j]), 1e-300) for j in range(mat.shape[1])]
        )
        worst = max(worst, abs(np.linalg.det(mat)) / scale)
        if abs(law.denominator_det(complex(s))) < 1e-12:
            worst = max(worst, float("inf"))
    return worst


def place_poles(
    plant: StateSpace,
    poles: Sequence[complex],
    q: int = 0,
    options: TrackerOptions | None = None,
    seed: int = 0,
) -> PolePlacementResult:
    """Compute **all** output feedback laws placing the given poles.

    Parameters
    ----------
    plant:
        The (A, B, C) machine; its state dimension must be the well-posed
        ``m*p + q*(m+p) - q``.
    poles:
        The N = m*p + q*(m+p) prescribed closed-loop poles, distinct and
        disjoint from the open-loop spectrum.
    q:
        Number of internal states of the compensator (0 = static gain).
    """
    m, p = plant.n_inputs, plant.n_outputs
    problem = PieriProblem(m, p, q)
    n_required = required_state_dimension(m, p, q)
    if plant.n_states != n_required:
        raise ValueError(
            f"plant has {plant.n_states} states; a well-posed ({m},{p},{q}) "
            f"problem needs {n_required}"
        )
    poles = [complex(s) for s in poles]
    if len(poles) != problem.num_conditions:
        raise ValueError(
            f"need exactly {problem.num_conditions} poles, got {len(poles)}"
        )
    planes = pole_planes(plant, poles)
    instance = PieriInstance(problem, planes, poles)
    solver = PieriSolver(instance, options=options, seed=seed)
    report = solver.solve()
    root = PieriPoset.build(problem).root()
    laws: List[StaticFeedbackLaw | DynamicCompensator] = []
    failures = report.failures
    for sol in report.solutions:
        try:
            laws.append(extract_feedback(sol, root))
        except ValueError:
            failures += 1
    return PolePlacementResult(
        plant=plant,
        poles=poles,
        q=q,
        laws=laws,
        failures=failures,
        expected_count=report.expected_count(),
        total_seconds=report.total_seconds,
    )
