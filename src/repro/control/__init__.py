"""Control of linear systems: pole placement by output feedback."""

from .feedback import (
    DynamicCompensator,
    StaticFeedbackLaw,
    extract_feedback,
    split_map_matrix,
)
from .pole_placement import (
    PolePlacementResult,
    place_poles,
    pole_planes,
    verify_law,
)
from .oracle import PolePlacementOracle
from .realization import (
    CompensatorRealization,
    closed_loop_matrix,
    realize_compensator,
)
from .statespace import StateSpace, random_plant, required_state_dimension

__all__ = [
    "PolePlacementOracle",
    "CompensatorRealization",
    "closed_loop_matrix",
    "realize_compensator",
    "DynamicCompensator",
    "StaticFeedbackLaw",
    "extract_feedback",
    "split_map_matrix",
    "PolePlacementResult",
    "place_poles",
    "pole_planes",
    "verify_law",
    "StateSpace",
    "random_plant",
    "required_state_dimension",
]
