"""Offline/online pole placement via coefficient-parameter continuation.

The Pieri tree costs ``sum(level counts)`` tracked paths (e.g. 252 for
(3,2,1)); but the expensive solve only depends on (m, p, q), not on the
plant.  :class:`PolePlacementOracle` therefore runs the tree **once** on a
random general instance (offline), and then answers every concrete
``place(plant, poles)`` query by deforming that instance's solutions to
the query's planes/points — ``d(m, p, q)`` paths each (55 for (3,2,1)).

This is the deployment mode the paper's framework targets: the cluster
produces the general solution set; specific feedback laws for specific
machines are then cheap (also in this repository's benchmarks:
``bench_oracle_online_vs_tree``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..schubert import (
    PieriInstance,
    PieriPoset,
    PieriProblem,
    PieriSolver,
    continue_to_instance,
)
from ..tracker import TrackerOptions
from .feedback import DynamicCompensator, StaticFeedbackLaw, extract_feedback
from .pole_placement import PolePlacementResult, pole_planes
from .statespace import StateSpace, required_state_dimension

__all__ = ["PolePlacementOracle"]


@dataclass
class PolePlacementOracle:
    """Pre-solved general Pieri instance for one (m, p, q) problem shape."""

    problem: PieriProblem
    base_instance: PieriInstance
    base_solutions: List[np.ndarray]
    offline_seconds: float = 0.0
    offline_paths: int = 0

    @classmethod
    def train(
        cls,
        m: int,
        p: int,
        q: int = 0,
        seed: int = 0,
        options: TrackerOptions | None = None,
    ) -> "PolePlacementOracle":
        """The offline step: solve one general instance with the tree."""
        rng = np.random.default_rng(seed)
        instance = PieriInstance.random(m, p, q, rng)
        solver = PieriSolver(instance, options=options, seed=seed)
        report = solver.solve()
        if report.n_solutions != report.expected_count():
            raise RuntimeError(
                f"offline solve found {report.n_solutions} of "
                f"{report.expected_count()} solutions"
            )
        return cls(
            problem=instance.problem,
            base_instance=instance,
            base_solutions=report.solutions,
            offline_seconds=report.total_seconds,
            offline_paths=sum(report.jobs_per_level.values()),
        )

    @property
    def n_solutions(self) -> int:
        return len(self.base_solutions)

    # ------------------------------------------------------------------
    def continue_to(
        self,
        target: PieriInstance,
        seed: int = 0,
        options: TrackerOptions | None = None,
    ) -> List[np.ndarray]:
        """Online step for a raw Pieri instance (d(m,p,q) paths)."""
        solutions, _ = continue_to_instance(
            self.base_instance,
            self.base_solutions,
            target,
            options=options,
            rng=np.random.default_rng(seed),
        )
        return solutions

    def place(
        self,
        plant: StateSpace,
        poles: Sequence[complex],
        seed: int = 0,
        options: TrackerOptions | None = None,
    ) -> PolePlacementResult:
        """Online pole placement: all feedback laws for a concrete query."""
        m, p, q = self.problem.m, self.problem.p, self.problem.q
        if (plant.n_inputs, plant.n_outputs) != (m, p):
            raise ValueError(
                f"oracle is for m={m}, p={p}; plant has "
                f"{plant.n_inputs} inputs, {plant.n_outputs} outputs"
            )
        if plant.n_states != required_state_dimension(m, p, q):
            raise ValueError(
                f"plant needs {required_state_dimension(m, p, q)} states"
            )
        poles = [complex(s) for s in poles]
        if len(poles) != self.problem.num_conditions:
            raise ValueError(
                f"need exactly {self.problem.num_conditions} poles"
            )
        import time

        t0 = time.perf_counter()
        target = PieriInstance(
            self.problem, pole_planes(plant, poles), poles
        )
        solutions = self.continue_to(target, seed=seed, options=options)
        root = PieriPoset.build(self.problem).root()
        laws: List[StaticFeedbackLaw | DynamicCompensator] = []
        failures = len(self.base_solutions) - len(solutions)
        for sol in solutions:
            try:
                laws.append(extract_feedback(sol, root))
            except ValueError:
                failures += 1
        return PolePlacementResult(
            plant=plant,
            poles=poles,
            q=q,
            laws=laws,
            failures=failures,
            expected_count=len(self.base_solutions),
            total_seconds=time.perf_counter() - t0,
        )
