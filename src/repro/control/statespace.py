"""Linear time-invariant plants (A, B, C) and transfer-function evaluation.

The machine of the paper's introduction: m inputs, p outputs, evolving by
x' = Ax + Bu, y = Cx.  Only what pole placement needs lives here —
transfer-function evaluation, open-loop poles, and random well-posed plant
generation (the state dimension must equal ``m*p + q*(m+p) - q`` for the
output-feedback problem with a q-state compensator to be square).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..linalg import random_complex_matrix

__all__ = ["StateSpace", "random_plant", "required_state_dimension"]


def required_state_dimension(m: int, p: int, q: int = 0) -> int:
    """Plant states n so that #closed-loop poles == #conditions.

    The closed loop of an n-state plant and a q-state compensator has
    ``n + q`` poles while the Pieri problem imposes ``N = m*p + q*(m+p)``
    interpolation conditions, so well-posedness needs ``n = N - q``.
    """
    return m * p + q * (m + p) - q


@dataclass(frozen=True)
class StateSpace:
    """An LTI plant x' = Ax + Bu, y = Cx (D = 0)."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    def __post_init__(self) -> None:
        a = np.asarray(self.a, dtype=complex)
        b = np.asarray(self.b, dtype=complex)
        c = np.asarray(self.c, dtype=complex)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError("A must be square")
        if b.ndim != 2 or b.shape[0] != n:
            raise ValueError("B must be n x m")
        if c.ndim != 2 or c.shape[1] != n:
            raise ValueError("C must be p x n")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)

    @property
    def n_states(self) -> int:
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.b.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.c.shape[0]

    def transfer(self, s: complex) -> np.ndarray:
        """G(s) = C (sI - A)^{-1} B, the p x m transfer matrix."""
        n = self.n_states
        return self.c @ np.linalg.solve(
            s * np.eye(n, dtype=complex) - self.a, self.b
        )

    def open_loop_poles(self) -> np.ndarray:
        return np.linalg.eigvals(self.a)

    def is_pole(self, s: complex, tol: float = 1e-8) -> bool:
        return bool(np.min(np.abs(self.open_loop_poles() - s)) < tol)

    def closed_loop_matrix(self, f: np.ndarray) -> np.ndarray:
        """A + B F C for static output feedback u = F y."""
        f = np.asarray(f, dtype=complex)
        if f.shape != (self.n_inputs, self.n_outputs):
            raise ValueError(
                f"F must be {self.n_inputs} x {self.n_outputs}"
            )
        return self.a + self.b @ f @ self.c

    def __repr__(self) -> str:
        return (
            f"StateSpace(n={self.n_states}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs})"
        )


def random_plant(
    m: int,
    p: int,
    q: int = 0,
    rng: np.random.Generator | None = None,
    real: bool = False,
) -> StateSpace:
    """A random generic plant with the well-posed state dimension.

    With ``real=True`` the matrices are real Gaussian (the physically
    meaningful case); feedback laws then come in conjugate pairs when the
    prescribed pole set is self-conjugate.
    """
    rng = np.random.default_rng() if rng is None else rng
    n = required_state_dimension(m, p, q)
    if real:
        a = rng.standard_normal((n, n)).astype(complex)
        b = rng.standard_normal((n, m)).astype(complex)
        c = rng.standard_normal((p, n)).astype(complex)
    else:
        a = random_complex_matrix(n, n, rng)
        b = random_complex_matrix(n, m, rng)
        c = random_complex_matrix(p, n, rng)
    return StateSpace(a, b, c)
