"""Feedback laws extracted from Pieri solution matrices.

A Pieri solution for the pole placement problem is a concatenated
coefficient matrix ``X`` fitting the root localization pattern.  Splitting
each ambient block into its top ``p`` and bottom ``m`` rows gives the right
matrix-fraction description of the compensator:

    X(s) = [ Y(s) ]   p x p        compensator transfer  C(s) = Z(s) Y(s)^{-1}
           [ Z(s) ]   m x p

For q = 0 the map is constant and the static output feedback law is
``F = Z Y^{-1}`` (an m x p gain for u = F y).  For q > 0 the compensator is
dynamic with McMillan degree q; it is represented here by its MFD and
verified through the determinant identity (see
:mod:`repro.control.pole_placement`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..linalg import PolyMatrix
from ..schubert.patterns import LocalizationPattern
from .statespace import StateSpace

__all__ = [
    "StaticFeedbackLaw",
    "DynamicCompensator",
    "extract_feedback",
    "split_map_matrix",
]


def split_map_matrix(
    x: np.ndarray, pattern: LocalizationPattern
) -> tuple[PolyMatrix, PolyMatrix]:
    """Split a concatenated solution into (Y(s), Z(s)) polynomial matrices."""
    problem = pattern.problem
    amb, p, m = problem.ambient, problem.p, problem.m
    max_deg = max(pattern.column_degrees())
    y_coeffs = [np.zeros((p, p), dtype=complex) for _ in range(max_deg + 1)]
    z_coeffs = [np.zeros((m, p), dtype=complex) for _ in range(max_deg + 1)]
    for l in range(max_deg + 1):
        block = x[l * amb : (l + 1) * amb, :]
        if block.shape[0] == 0:
            continue
        pad = np.zeros((amb, p), dtype=complex)
        pad[: block.shape[0]] = block
        y_coeffs[l] = pad[:p, :]
        z_coeffs[l] = pad[p:, :]
    return PolyMatrix(y_coeffs), PolyMatrix(z_coeffs)


@dataclass(frozen=True)
class StaticFeedbackLaw:
    """u = F y output feedback (the q = 0 case)."""

    f: np.ndarray

    def closed_loop_poles(self, plant: StateSpace) -> np.ndarray:
        return np.linalg.eigvals(plant.closed_loop_matrix(self.f))

    def pole_error(self, plant: StateSpace, poles) -> float:
        """Max distance between achieved and prescribed pole multisets."""
        achieved = np.sort_complex(self.closed_loop_poles(plant))
        target = np.sort_complex(np.asarray(poles, dtype=complex))
        if achieved.shape != target.shape:
            raise ValueError("pole count mismatch")
        # greedy matching is enough for generic (well separated) pole sets
        err = 0.0
        remaining = list(achieved)
        for t in target:
            dists = [abs(t - a) for a in remaining]
            k = int(np.argmin(dists))
            err = max(err, dists[k])
            remaining.pop(k)
        return err

    def __repr__(self) -> str:
        return f"StaticFeedbackLaw(shape={self.f.shape})"


@dataclass(frozen=True)
class DynamicCompensator:
    """A degree-q compensator as a right MFD  C(s) = Z(s) Y(s)^{-1}."""

    y: PolyMatrix
    z: PolyMatrix
    q: int

    def transfer(self, s: complex) -> np.ndarray:
        """C(s) = Z(s) Y(s)^{-1} (raises if Y(s) is singular)."""
        return self.z(s) @ np.linalg.inv(self.y(s))

    def denominator_det(self, s: complex) -> complex:
        return complex(np.linalg.det(self.y(s)))

    def is_proper_at(self, s: complex = 1e6) -> bool:
        """Heuristic properness check: bounded transfer far from poles."""
        try:
            val = self.transfer(complex(s))
        except np.linalg.LinAlgError:
            return False
        return bool(np.all(np.isfinite(val)) and np.max(np.abs(val)) < 1e6)

    def is_degenerate(self, poles, tol: float = 1e-8) -> bool:
        """True when Y(s) is (nearly) singular at a prescribed pole.

        Such solutions lie on the boundary of the compactified solution
        space: they satisfy the intersection conditions via a compensator
        pole/zero cancellation at ``s_i`` instead of a genuine closed-loop
        pole, so they are not usable feedback laws.  Generic inputs have
        none; structured pole sets occasionally produce one.
        """
        for s in poles:
            ys = self.y(complex(s))
            largest = float(np.max(np.abs(ys)))
            if largest < 1e-150:
                return True  # Y(s) is (numerically) the zero matrix
            if abs(np.linalg.det(ys)) < tol * largest**ys.shape[0]:
                return True
        return False

    def __repr__(self) -> str:
        return f"DynamicCompensator(q={self.q}, shape={self.z.shape})"


def extract_feedback(
    x: np.ndarray, pattern: LocalizationPattern
) -> StaticFeedbackLaw | DynamicCompensator:
    """Convert a root-pattern Pieri solution into a feedback law.

    Columns of the map matrix are rescaled to unit max-norm first: the
    feedback law ``Z Y^{-1}`` is invariant under column scaling of the
    stacked ``[Y; Z]``, and the Pieri chart (bottom pivot = 1) can leave
    other coefficients huge, which would poison the inversions downstream.
    """
    problem = pattern.problem
    x = np.asarray(x, dtype=complex).copy()
    for j in range(x.shape[1]):
        scale = np.max(np.abs(x[:, j]))
        if scale > 0:
            x[:, j] /= scale
    y, z = split_map_matrix(x, pattern)
    if problem.q == 0:
        y0 = y.coefficient(0)
        z0 = z.coefficient(0)
        try:
            f = z0 @ np.linalg.inv(y0)
        except np.linalg.LinAlgError as exc:
            raise ValueError(
                "solution map is not in the affine feedback chart "
                "(Y block singular); the input was non-generic"
            ) from exc
        return StaticFeedbackLaw(f)
    return DynamicCompensator(y, z, problem.q)
